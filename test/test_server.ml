(* End-to-end tests of the plutod daemon (lib/server): protocol round
   trips, compile parity with the in-process driver, request dedup under
   genuinely concurrent clients, warm restart from the persistent store
   after a SIGKILL, per-request deadlines, and graceful drain on SIGTERM.

   Every daemon runs as a forked child of the test process so a test
   failure can never leak a listener: [with_daemon] SIGKILLs anything the
   test body did not already reap. *)

let options = Driver.default_options
let jacobi_src = Kernels.jacobi_1d.Kernels.source
let matmul_src = Kernels.matmul.Kernels.source

let status_str = function
  | Unix.WEXITED n -> Printf.sprintf "exited %d" n
  | Unix.WSIGNALED n -> Printf.sprintf "signaled %d" n
  | Unix.WSTOPPED n -> Printf.sprintf "stopped %d" n

(* ------------------------------ daemon harness ---------------------------- *)

let start_daemon ?(jobs = 2) ?default_deadline_s ?cache_dir ?fault
    ?(tweak = fun c -> c) ~socket () =
  let pid = Unix.fork () in
  if pid = 0 then begin
    (try
       Stats.reset ();
       Fault.install fault;
       Store.set_dir cache_dir;
       Server.run
         (tweak
            {
              (Server.default_config ~socket_path:socket) with
              Server.jobs;
              default_deadline_s;
            })
     with
    | Failure _ -> Unix._exit 3
    | _ -> Unix._exit 4);
    Unix._exit 0
  end
  else begin
    (* readiness: poll until the socket accepts a connection *)
    let deadline = Unix.gettimeofday () +. 15.0 in
    let rec wait () =
      match Client.connect socket with
      | Some fd -> Client.close fd
      | None ->
          (match Unix.waitpid [ Unix.WNOHANG ] pid with
          | 0, _ -> ()
          | _, st ->
              Alcotest.failf "daemon died during startup (%s)" (status_str st));
          if Unix.gettimeofday () > deadline then
            Alcotest.fail "daemon did not become ready within 15s"
          else begin
            Unix.sleepf 0.02;
            wait ()
          end
    in
    wait ();
    pid
  end

(* Reap a child the test body may or may not have waited for already. *)
let reap_or_kill pid =
  match Unix.waitpid [ Unix.WNOHANG ] pid with
  | 0, _ ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
  | _ -> ()
  | exception Unix.Unix_error _ -> ()

let with_daemon ?jobs ?default_deadline_s ?cache_dir ?fault ?tweak ~socket f =
  let pid =
    start_daemon ?jobs ?default_deadline_s ?cache_dir ?fault ?tweak ~socket ()
  in
  Fun.protect ~finally:(fun () -> reap_or_kill pid) (fun () -> f pid)

let wait_exit pid =
  match Unix.waitpid [] pid with _, st -> st

let compile_ok ~socket ?deadline_s ~name source =
  match Client.compile ~socket ?deadline_s ~options ~name ~source () with
  | `No_daemon -> Alcotest.fail "daemon vanished mid-test"
  | `Daemon (Error msg) -> Alcotest.failf "daemon protocol error: %s" msg
  | `Daemon (Ok r) -> r

(* what a standalone in-process compile of [source] produces *)
let local_code source =
  match
    Driver.compile_source_robust ~options ~strict:false ~verify:false
      ~name:"local" source
  with
  | Error ds ->
      Alcotest.failf "local reference compile failed: %s"
        (Format.asprintf "%a" (fun fmt ds -> Diag.pp_all fmt ds) ds)
  | Ok (r, _) ->
      Format.asprintf "%a" (fun fmt c -> Codegen.print_c fmt c) r.Driver.code

let counter_in_line line name =
  match Manifest.Json.parse line with
  | Error msg -> Alcotest.failf "unparseable stats response: %s" msg
  | Ok j -> (
      match Option.bind (Manifest.Json.mem "stats" j)
              (Manifest.Json.mem "counters")
      with
      | Some c -> int_of_float (Manifest.Json.num_mem name c ~default:0.0)
      | None -> 0)

let daemon_counter ~socket name =
  match Client.stats ~socket with
  | Error msg -> Alcotest.failf "stats request failed: %s" msg
  | Ok line -> counter_in_line line name

(* top-level numeric field of the stats response (outside the counters) *)
let daemon_stat_field ~socket name =
  match Client.stats ~socket with
  | Error msg -> Alcotest.failf "stats request failed: %s" msg
  | Ok line -> (
      match Manifest.Json.parse line with
      | Error msg -> Alcotest.failf "unparseable stats response: %s" msg
      | Ok j -> int_of_float (Manifest.Json.num_mem name j ~default:(-1.0)))

let write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    match Unix.write_substring fd s !off (n - !off) with
    | w -> off := !off + w
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* Read exactly [n] newline-terminated response lines from a blocking fd. *)
let read_lines fd n =
  let buf = Buffer.create 65536 in
  let chunk = Bytes.create 65536 in
  let complete s = List.length (String.split_on_char '\n' s) - 1 in
  let rec go () =
    let s = Buffer.contents buf in
    if complete s >= n then
      List.filteri (fun i _ -> i < n) (String.split_on_char '\n' s)
    else
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | 0 -> Alcotest.failf "EOF after %d of %d responses" (complete s) n
      | k ->
          Buffer.add_subbytes buf chunk 0 k;
          go ()
  in
  go ()

let parse_ok what line =
  match Client.parse_response line with
  | Error msg -> Alcotest.failf "%s: undecodable response: %s" what msg
  | Ok r -> r

(* ------------------------------- pure tests -------------------------------- *)

let test_options_wire () =
  let d = Driver.default_options in
  let enc = Manifest.options_to_json d in
  (match Manifest.Json.parse enc with
  | Error msg -> Alcotest.failf "canonical options not parseable: %s" msg
  | Ok j ->
      Alcotest.(check string)
        "default options survive a wire round trip" enc
        (Manifest.options_to_json (Manifest.options_of_json j)));
  (* overrides: only the fields present change, everything else stays *)
  match
    Manifest.Json.parse
      "{\"tile\": false, \"unroll_jam\": 7, \"fast_schedule\": true}"
  with
  | Error msg -> Alcotest.failf "override object not parseable: %s" msg
  | Ok j ->
      let o = Manifest.options_of_json j in
      let enc' = Manifest.options_to_json o in
      Alcotest.(check bool) "tile overridden" false o.Driver.tile;
      Alcotest.(check int) "unroll_jam overridden" 7 o.Driver.unroll_jam;
      Alcotest.(check bool)
        "fast_schedule overridden" true o.Driver.fast_schedule;
      Alcotest.(check bool)
        "untouched fields keep their defaults"
        true
        (o.Driver.parallelize = d.Driver.parallelize
        && o.Driver.wavefront = d.Driver.wavefront
        && o.Driver.tile_size = d.Driver.tile_size);
      Alcotest.(check bool) "re-encoding is canonical" true
        (String.length enc' > 0 && enc' <> enc)

let test_request_digest () =
  let dg ?(options = options) ?(strict = false) ?(verify = false) source =
    Server.request_digest ~options ~strict ~verify ~source
  in
  Alcotest.(check string)
    "digest is deterministic" (dg jacobi_src) (dg jacobi_src);
  Alcotest.(check bool)
    "source changes the digest" true
    (dg jacobi_src <> dg matmul_src);
  Alcotest.(check bool)
    "strict changes the digest" true
    (dg jacobi_src <> dg ~strict:true jacobi_src);
  let o' = { options with Driver.unroll_jam = 9 } in
  Alcotest.(check bool)
    "options change the digest" true
    (dg jacobi_src <> dg ~options:o' jacobi_src)

let test_entry_roundtrip () =
  let entry =
    {
      Manifest.e_file = "k.c";
      e_status = Manifest.Degraded;
      e_rung = "tiled";
      e_diags =
        [
          Diag.errorf ~code:"boom" "it %s" "broke";
          Diag.warningf ~code:"softly" "eased off";
        ];
      e_code = Some "for (i = 0; i < n; i++) {}\n";
      e_output = None;
      e_elapsed_s = 0.25;
      e_retried = true;
    }
  in
  let line = Manifest.entry_to_json ~include_code:true entry in
  match Manifest.Json.parse line with
  | Error msg -> Alcotest.failf "entry JSON not parseable: %s" msg
  | Ok j -> (
      match Manifest.entry_of_json j with
      | Error msg -> Alcotest.failf "entry did not decode: %s" msg
      | Ok e ->
          Alcotest.(check string) "file" entry.Manifest.e_file e.Manifest.e_file;
          Alcotest.(check bool) "status" true
            (e.Manifest.e_status = Manifest.Degraded);
          Alcotest.(check string) "rung" "tiled" e.Manifest.e_rung;
          Alcotest.(check (option string))
            "code" entry.Manifest.e_code e.Manifest.e_code;
          Alcotest.(check bool) "retried" true e.Manifest.e_retried;
          Alcotest.(check int) "diag count" 2 (List.length e.Manifest.e_diags);
          Alcotest.(check bool) "diag codes survive" true
            (Diag.has_code e.Manifest.e_diags "boom"
            && Diag.has_code e.Manifest.e_diags "softly"))

let test_no_daemon_fallback () =
  Pool.with_temp_dir ~prefix:"server" (fun dir ->
      let socket = Filename.concat dir "absent.sock" in
      match
        Client.compile ~socket ~options ~name:"k.c" ~source:matmul_src ()
      with
      | `No_daemon -> ()
      | `Daemon _ -> Alcotest.fail "connected to a daemon that does not exist")

(* ----------------------------- daemon lifecycle ---------------------------- *)

(* One daemon: compile parity with the in-process driver, result-cache hit
   on the identical re-request, admin ops, malformed requests answered with
   structured diagnostics, graceful shutdown removing the socket. *)
let test_compile_parity_and_admin () =
  Pool.with_temp_dir ~prefix:"server" (fun dir ->
      let socket = Filename.concat dir "d.sock" in
      with_daemon ~socket (fun pid ->
          Alcotest.(check bool) "ping answers" true (Client.ping ~socket);
          let reference = local_code matmul_src in
          let r1 = compile_ok ~socket ~name:"matmul.c" matmul_src in
          Alcotest.(check bool) "first compile succeeds" true
            (r1.Client.r_entry.Manifest.e_status = Manifest.Success);
          Alcotest.(check (option string))
            "daemon output bit-identical to the in-process driver"
            (Some reference) r1.Client.r_entry.Manifest.e_code;
          Alcotest.(check bool) "first answer is a fresh compile" false
            r1.Client.r_cached;
          let r2 = compile_ok ~socket ~name:"matmul.c" matmul_src in
          Alcotest.(check bool) "identical request served from cache" true
            r2.Client.r_cached;
          Alcotest.(check (option string))
            "cached answer bit-identical" (Some reference)
            r2.Client.r_entry.Manifest.e_code;
          Alcotest.(check int) "exactly one compile ran" 1
            (daemon_counter ~socket "server.compiles");
          Alcotest.(check int) "one result-cache hit" 1
            (daemon_counter ~socket "server.result_cache_hits");
          (* malformed requests get structured diagnostics, not hangups *)
          (match Client.connect socket with
          | None -> Alcotest.fail "daemon vanished"
          | Some fd ->
              Fun.protect
                ~finally:(fun () -> Client.close fd)
                (fun () ->
                  let check_bad what line =
                    match Client.roundtrip fd line with
                    | Error msg ->
                        Alcotest.failf "%s dropped the connection: %s" what msg
                    | Ok resp -> (
                        match
                          Result.bind
                            (Result.map_error
                               (fun m -> m)
                               (Manifest.Json.parse resp))
                            Manifest.entry_of_json
                        with
                        | Error msg ->
                            Alcotest.failf "%s response undecodable: %s" what
                              msg
                        | Ok e ->
                            Alcotest.(check bool)
                              (what ^ " answered with bad-request") true
                              (e.Manifest.e_status = Manifest.Failed
                              && Diag.has_code e.Manifest.e_diags
                                   "bad-request"))
                  in
                  check_bad "garbage line" "{this is not json";
                  check_bad "unknown op" "{\"op\": \"frobnicate\"}";
                  check_bad "compile without source" "{\"op\": \"compile\"}"));
          Alcotest.(check bool) "shutdown acknowledged" true
            (Client.shutdown ~socket);
          Alcotest.(check bool) "daemon drained and exited 0" true
            (wait_exit pid = Unix.WEXITED 0);
          Alcotest.(check bool) "socket file removed" false
            (Sys.file_exists socket)))

(* ---------------------------------- dedup ---------------------------------- *)

(* N forked clients release identical requests through a pipe barrier at a
   single-job daemon: exactly one compile runs, the other N-1 coalesce onto
   it, and all N answers are bit-identical. *)
let test_dedup_coalesces () =
  let n = 4 in
  Pool.with_temp_dir ~prefix:"server" (fun dir ->
      let socket = Filename.concat dir "d.sock" in
      with_daemon ~jobs:1 ~socket (fun pid ->
          let barrier_r, barrier_w = Unix.pipe () in
          let out_file i = Filename.concat dir (Printf.sprintf "c%d.json" i) in
          let clients =
            List.init n (fun i ->
                let cpid = Unix.fork () in
                if cpid = 0 then begin
                  ((try
                      Unix.close barrier_w;
                      match Client.connect socket with
                     | None -> Unix._exit 2
                     | Some fd ->
                         (* connected; block until the barrier collapses so
                            all n requests hit the daemon together *)
                         ignore (Unix.read barrier_r (Bytes.create 1) 0 1);
                         (match
                            Client.compile_fd fd ~options
                              ~name:(Printf.sprintf "client%d.c" i)
                              ~source:jacobi_src ()
                          with
                         | Error _ -> Unix._exit 3
                         | Ok r ->
                             Fixtures.write_file (out_file i) r.Client.r_raw;
                             Unix._exit 0)
                    with _ -> Unix._exit 4)
                   : unit);
                  Unix._exit 0
                end
                else cpid)
          in
          Unix.close barrier_r;
          (* give every client a beat to connect and park on the barrier *)
          Unix.sleepf 0.2;
          Unix.close barrier_w;
          List.iter
            (fun cpid ->
              let st = wait_exit cpid in
              if st <> Unix.WEXITED 0 then
                Alcotest.failf "client did not complete cleanly (%s)"
                  (status_str st))
            clients;
          let entries =
            List.init n (fun i ->
                let ic = open_in_bin (out_file i) in
                let len = in_channel_length ic in
                let raw = really_input_string ic len in
                close_in ic;
                match
                  Result.bind (Manifest.Json.parse raw) Manifest.entry_of_json
                with
                | Error msg -> Alcotest.failf "client %d response: %s" i msg
                | Ok e -> (raw, e))
          in
          let codes =
            List.map (fun (_, e) -> e.Manifest.e_code) entries
          in
          (match codes with
          | (Some _ as first) :: rest ->
              Alcotest.(check bool)
                "all coalesced answers bit-identical" true
                (List.for_all (fun c -> c = first) rest)
          | _ -> Alcotest.fail "a coalesced client got no code");
          let coalesced =
            List.filter
              (fun (raw, _) ->
                match Manifest.Json.parse raw with
                | Ok j -> Manifest.Json.bool_mem "coalesced" j ~default:false
                | Error _ -> false)
              entries
          in
          Alcotest.(check int)
            "all but the first requester coalesced" (n - 1)
            (List.length coalesced);
          Alcotest.(check int) "exactly one compile ran" 1
            (daemon_counter ~socket "server.compiles");
          Alcotest.(check int)
            "server.dedup_coalesced counts the joiners" (n - 1)
            (daemon_counter ~socket "server.dedup_coalesced");
          Alcotest.(check bool) "shutdown" true (Client.shutdown ~socket);
          Alcotest.(check bool) "exit 0" true (wait_exit pid = Unix.WEXITED 0)))

(* ----------------------- chaos: SIGKILL + warm restart --------------------- *)

(* Kill a daemon outright mid-life; a replacement on the same socket path
   and cache dir must heal the stale socket file and serve the previous
   result warm from the persistent store, bit-identically. *)
let test_sigkill_warm_restart () =
  Pool.with_temp_dir ~prefix:"server" (fun dir ->
      let socket = Filename.concat dir "d.sock" in
      let cache = Filename.concat dir "cache" in
      let pid1 = start_daemon ~socket ~cache_dir:cache () in
      let code1 =
        Fun.protect
          ~finally:(fun () -> reap_or_kill pid1)
          (fun () ->
            let r = compile_ok ~socket ~name:"matmul.c" matmul_src in
            Alcotest.(check bool) "first daemon compiles" true
              (r.Client.r_entry.Manifest.e_status = Manifest.Success);
            (* no drain: the daemon dies with the socket file in place *)
            Unix.kill pid1 Sys.sigkill;
            Alcotest.(check bool) "daemon was SIGKILLed" true
              (wait_exit pid1 = Unix.WSIGNALED Sys.sigkill);
            r.Client.r_entry.Manifest.e_code)
      in
      Alcotest.(check bool) "stale socket file left behind" true
        (Sys.file_exists socket);
      (* the replacement must bind over the stale socket, not refuse *)
      with_daemon ~socket ~cache_dir:cache (fun pid2 ->
          let r = compile_ok ~socket ~name:"matmul.c" matmul_src in
          Alcotest.(check bool) "restart served from the store" true
            r.Client.r_cached;
          Alcotest.(check (option string))
            "warm answer bit-identical to the pre-crash compile" code1
            r.Client.r_entry.Manifest.e_code;
          Alcotest.(check int) "no compile ran after restart" 0
            (daemon_counter ~socket "server.compiles");
          Alcotest.(check int) "the store supplied the result" 1
            (daemon_counter ~socket "server.result_store_hits");
          Alcotest.(check bool) "shutdown" true (Client.shutdown ~socket);
          Alcotest.(check bool) "exit 0" true
            (wait_exit pid2 = Unix.WEXITED 0)))

(* -------------------------------- deadlines -------------------------------- *)

let test_deadline_expiry () =
  Pool.with_temp_dir ~prefix:"server" (fun dir ->
      let socket = Filename.concat dir "d.sock" in
      with_daemon ~jobs:1 ~socket (fun pid ->
          (* 1ms: no worker can fork, parse, and schedule in time *)
          let r =
            compile_ok ~socket ~deadline_s:0.001 ~name:"slow.c" jacobi_src
          in
          Alcotest.(check bool) "expired request fails" true
            (r.Client.r_entry.Manifest.e_status = Manifest.Failed);
          Alcotest.(check bool)
            "failure is the structured pool-timeout diagnostic" true
            (Diag.has_code r.Client.r_entry.Manifest.e_diags "pool-timeout");
          Alcotest.(check int) "counted as deadline_expired" 1
            (daemon_counter ~socket "server.deadline_expired");
          (* the daemon survives its worker's death and keeps serving *)
          Alcotest.(check bool) "daemon still answers pings" true
            (Client.ping ~socket);
          let ok = compile_ok ~socket ~name:"matmul.c" matmul_src in
          Alcotest.(check bool) "subsequent request compiles fine" true
            (ok.Client.r_entry.Manifest.e_status = Manifest.Success);
          Alcotest.(check bool) "shutdown" true (Client.shutdown ~socket);
          Alcotest.(check bool) "exit 0" true
            (wait_exit pid = Unix.WEXITED 0)))

(* ----------------------------- graceful drain ------------------------------ *)

(* SIGTERM while a compile is in flight: the accepted request is still
   answered, the daemon exits 0, the socket file is gone. *)
let test_sigterm_drains () =
  Pool.with_temp_dir ~prefix:"server" (fun dir ->
      let socket = Filename.concat dir "d.sock" in
      with_daemon ~jobs:1 ~socket (fun pid ->
          let out = Filename.concat dir "drain.json" in
          let cpid = Unix.fork () in
          if cpid = 0 then begin
            ((try
                match Client.connect socket with
                | None -> Unix._exit 2
                | Some fd -> (
                    match
                      Client.compile_fd fd ~options ~name:"drain.c"
                        ~source:jacobi_src ()
                    with
                    | Error _ -> Unix._exit 3
                    | Ok r ->
                        Fixtures.write_file out r.Client.r_raw;
                        Unix._exit 0)
              with _ -> Unix._exit 4)
             : unit);
            Unix._exit 0
          end;
          (* let the request reach the daemon, then ask it to die *)
          Unix.sleepf 0.1;
          Unix.kill pid Sys.sigterm;
          Alcotest.(check bool) "in-flight client still got its answer" true
            (wait_exit cpid = Unix.WEXITED 0);
          Alcotest.(check bool) "daemon drained and exited 0" true
            (wait_exit pid = Unix.WEXITED 0);
          Alcotest.(check bool) "socket file removed" false
            (Sys.file_exists socket);
          match
            Result.bind
              (Manifest.Json.parse
                 (let ic = open_in_bin out in
                  let raw =
                    really_input_string ic (in_channel_length ic)
                  in
                  close_in ic;
                  raw))
              Manifest.entry_of_json
          with
          | Error msg -> Alcotest.failf "drained response undecodable: %s" msg
          | Ok e ->
              Alcotest.(check bool) "drained response is a success" true
                (e.Manifest.e_status = Manifest.Success
                && e.Manifest.e_code <> None)))

(* --------------------------- bounded resources ----------------------------- *)

(* A newline-free blob over --max-request-bytes can never complete as a
   request line: the daemon must answer one structured bad-request, hang
   up, and keep serving everyone else. *)
let test_oversize_request () =
  Pool.with_temp_dir ~prefix:"server" (fun dir ->
      let socket = Filename.concat dir "d.sock" in
      with_daemon ~socket
        ~tweak:(fun c -> { c with Server.max_request_bytes = 4096 })
        (fun pid ->
          (match Client.connect socket with
          | None -> Alcotest.fail "daemon not listening"
          | Some fd ->
              Fun.protect
                ~finally:(fun () -> Client.close fd)
                (fun () ->
                  (try write_all fd (String.make 16384 'x')
                   with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _)
                   ->
                     ());
                  (match read_lines fd 1 with
                  | [ line ] ->
                      let r = parse_ok "oversize" line in
                      Alcotest.(check bool)
                        "oversize line answered with bad-request" true
                        (r.Client.r_entry.Manifest.e_status = Manifest.Failed
                        && Diag.has_code r.Client.r_entry.Manifest.e_diags
                             "bad-request")
                  | _ -> Alcotest.fail "expected exactly one response line");
                  (* ...and then the daemon hangs up *)
                  let chunk = Bytes.create 16 in
                  let rec eof () =
                    match Unix.read fd chunk 0 16 with
                    | exception Unix.Unix_error (Unix.EINTR, _, _) -> eof ()
                    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> 0
                    | k -> k
                  in
                  Alcotest.(check int) "connection closed after bad-request" 0
                    (eof ())));
          Alcotest.(check int) "counted as server.bad_requests" 1
            (daemon_counter ~socket "server.bad_requests");
          let r = compile_ok ~socket ~name:"after.c" matmul_src in
          Alcotest.(check bool) "daemon still compiles afterwards" true
            (r.Client.r_entry.Manifest.e_status = Manifest.Success);
          Alcotest.(check bool) "shutdown" true (Client.shutdown ~socket);
          Alcotest.(check bool) "exit 0" true (wait_exit pid = Unix.WEXITED 0)))

(* Pipelining past --max-pipeline: the window-sized prefix is served, the
   overflow gets structured server-busy responses on the same connection,
   in order. *)
let test_pipeline_cap_busy () =
  Pool.with_temp_dir ~prefix:"server" (fun dir ->
      let socket = Filename.concat dir "d.sock" in
      with_daemon ~jobs:1 ~socket
        ~tweak:(fun c -> { c with Server.max_pipeline = 2 })
        (fun pid ->
          let reference = local_code jacobi_src in
          (match Client.connect socket with
          | None -> Alcotest.fail "daemon not listening"
          | Some fd ->
              Fun.protect
                ~finally:(fun () -> Client.close fd)
                (fun () ->
                  let req =
                    Client.compile_request ~options ~name:"k.c"
                      ~source:jacobi_src ()
                    ^ "\n"
                  in
                  write_all fd (String.concat "" [ req; req; req; req; req ]);
                  let resps =
                    List.map (parse_ok "pipelined") (read_lines fd 5)
                  in
                  let busy, served = List.partition Client.is_busy resps in
                  Alcotest.(check int)
                    "requests over the pipeline window rejected" 3
                    (List.length busy);
                  Alcotest.(check int) "window-sized prefix served" 2
                    (List.length served);
                  List.iter
                    (fun r ->
                      Alcotest.(check (option string))
                        "served answers bit-identical to the local compile"
                        (Some reference) r.Client.r_entry.Manifest.e_code)
                    served));
          Alcotest.(check int) "busy rejections counted" 3
            (daemon_counter ~socket "server.busy_rejections");
          Alcotest.(check bool) "shutdown" true (Client.shutdown ~socket);
          Alcotest.(check bool) "exit 0" true (wait_exit pid = Unix.WEXITED 0)))

(* Distinct sources past --max-queue on a one-worker daemon: the queue
   admits one new job, the rest get server-busy (cache hits and coalesced
   joins stay exempt — only NEW work is capped). *)
let test_queue_cap_busy () =
  Pool.with_temp_dir ~prefix:"server" (fun dir ->
      let socket = Filename.concat dir "d.sock" in
      with_daemon ~jobs:1 ~socket
        ~tweak:(fun c -> { c with Server.max_queue = 1 })
        (fun pid ->
          (match Client.connect socket with
          | None -> Alcotest.fail "daemon not listening"
          | Some fd ->
              Fun.protect
                ~finally:(fun () -> Client.close fd)
                (fun () ->
                  (* whitespace suffixes: distinct digests, same program *)
                  let req i =
                    Client.compile_request ~options
                      ~name:(Printf.sprintf "q%d.c" i)
                      ~source:(jacobi_src ^ String.make i ' ')
                      ()
                    ^ "\n"
                  in
                  write_all fd (req 0 ^ req 1 ^ req 2);
                  let resps =
                    List.map (parse_ok "queued") (read_lines fd 3)
                  in
                  let busy, served = List.partition Client.is_busy resps in
                  Alcotest.(check int) "overflow beyond the queue rejected" 2
                    (List.length busy);
                  Alcotest.(check int) "one new job admitted" 1
                    (List.length served);
                  List.iter
                    (fun r ->
                      Alcotest.(check bool) "admitted job compiled" true
                        (r.Client.r_entry.Manifest.e_status = Manifest.Success))
                    served));
          Alcotest.(check int) "busy rejections counted" 2
            (daemon_counter ~socket "server.busy_rejections");
          Alcotest.(check bool) "shutdown" true (Client.shutdown ~socket);
          Alcotest.(check bool) "exit 0" true (wait_exit pid = Unix.WEXITED 0)))

(* --solver-cache-entries: distinct kernels overflow a tiny budget, the
   daemon evicts (server.cache_evicted), the tables stay bounded, and the
   answers remain bit-identical to local compiles throughout. *)
let test_solver_cache_eviction () =
  Pool.with_temp_dir ~prefix:"server" (fun dir ->
      let socket = Filename.concat dir "d.sock" in
      with_daemon ~jobs:1 ~socket
        ~tweak:(fun c -> { c with Server.solver_cache_entries = Some 16 })
        (fun pid ->
          List.iter
            (fun (name, src) ->
              let r = compile_ok ~socket ~name src in
              Alcotest.(check bool)
                (name ^ " compiles under a tiny solver budget") true
                (r.Client.r_entry.Manifest.e_status = Manifest.Success);
              Alcotest.(check (option string))
                (name ^ " bit-identical to the local compile")
                (Some (local_code src))
                r.Client.r_entry.Manifest.e_code)
            [
              ("matmul.c", matmul_src);
              ("jacobi.c", jacobi_src);
              ("mvt.c", Kernels.mvt.Kernels.source);
            ];
          Alcotest.(check bool) "evictions happened and were counted" true
            (daemon_counter ~socket "server.cache_evicted" > 0);
          (* 16 per table: LP + integer feasibility + emptiness *)
          let entries = daemon_stat_field ~socket "solver_cache_entries" in
          Alcotest.(check bool)
            (Printf.sprintf "solver caches bounded (%d entries)" entries)
            true
            (entries >= 0 && entries <= 48);
          Alcotest.(check bool) "shutdown" true (Client.shutdown ~socket);
          Alcotest.(check bool) "exit 0" true (wait_exit pid = Unix.WEXITED 0)))

(* A client that pipelines hundreds of cache-hit requests without reading:
   once its unread responses exceed --max-output-bytes the daemon must stop
   READING from it (server.slow_reader_stalls) instead of buffering without
   bound — and still answer every request once the client finally drains. *)
let test_slow_reader_backpressure () =
  Pool.with_temp_dir ~prefix:"server" (fun dir ->
      let socket = Filename.concat dir "d.sock" in
      with_daemon ~socket
        ~tweak:(fun c ->
          { c with Server.max_output_bytes = 1024; max_pipeline = 10_000 })
        (fun pid ->
          let reference = local_code matmul_src in
          let r0 = compile_ok ~socket ~name:"m.c" matmul_src in
          Alcotest.(check bool) "priming compile succeeds" true
            (r0.Client.r_entry.Manifest.e_status = Manifest.Success);
          let n = 300 in
          (match Client.connect socket with
          | None -> Alcotest.fail "daemon not listening"
          | Some fd ->
              Fun.protect
                ~finally:(fun () -> Client.close fd)
                (fun () ->
                  Unix.set_nonblock fd;
                  let req =
                    Client.compile_request ~options ~name:"m.c"
                      ~source:matmul_src ()
                    ^ "\n"
                  in
                  let all = String.concat "" (List.init n (fun _ -> req)) in
                  let total = String.length all in
                  let sent = ref 0 in
                  let push () =
                    try
                      while !sent < total do
                        sent :=
                          !sent
                          + Unix.write_substring fd all !sent (total - !sent)
                      done
                    with
                    | Unix.Unix_error
                        ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
                    ->
                      ()
                  in
                  (* phase 1: write without reading a single byte *)
                  push ();
                  let deadline = Unix.gettimeofday () +. 15.0 in
                  while
                    daemon_counter ~socket "server.slow_reader_stalls" < 1
                    && Unix.gettimeofday () < deadline
                  do
                    push ();
                    Unix.sleepf 0.05
                  done;
                  Alcotest.(check bool) "daemon stalled the slow reader" true
                    (daemon_counter ~socket "server.slow_reader_stalls" >= 1);
                  (* phase 2: drain — every request still gets its answer *)
                  let buf = Buffer.create (1 lsl 20) in
                  let chunk = Bytes.create 65536 in
                  let complete () =
                    List.length
                      (String.split_on_char '\n' (Buffer.contents buf))
                    - 1
                  in
                  let deadline = Unix.gettimeofday () +. 60.0 in
                  while complete () < n && Unix.gettimeofday () < deadline do
                    push ();
                    match Unix.read fd chunk 0 (Bytes.length chunk) with
                    | exception
                        Unix.Unix_error
                          ( (Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR),
                            _,
                            _ )
                    ->
                        Unix.sleepf 0.002
                    | 0 -> Alcotest.fail "daemon closed a stalled connection"
                    | k -> Buffer.add_subbytes buf chunk 0 k
                  done;
                  let got =
                    List.filter
                      (fun l -> String.trim l <> "")
                      (String.split_on_char '\n' (Buffer.contents buf))
                  in
                  Alcotest.(check int) "every pipelined request answered" n
                    (List.length got);
                  List.iter
                    (fun l ->
                      let r = parse_ok "drained" l in
                      Alcotest.(check bool)
                        "drained response valid and bit-identical" true
                        (r.Client.r_entry.Manifest.e_code = Some reference))
                    got));
          Alcotest.(check bool) "shutdown" true (Client.shutdown ~socket);
          Alcotest.(check bool) "exit 0" true (wait_exit pid = Unix.WEXITED 0)))

(* Seeded fault injection on the daemon's own syscall sites (accept, read,
   write): every round trip either completes with a bit-identical answer or
   fails as a dropped connection — and the daemon survives it all with
   server.crashes = 0. *)
let test_chaos_fault_sites () =
  Pool.with_temp_dir ~prefix:"server" (fun dir ->
      let socket = Filename.concat dir "d.sock" in
      let fault =
        Some
          {
            Fault.seed = 20080613;
            rate = 0.05;
            only = [ "server." ];
            (* pin one injection per site so coverage never depends on the
               dice *)
            fail_at =
              [
                ("server.accept", [ 2 ]);
                ("server.read", [ 3 ]);
                ("server.write", [ 4 ]);
              ];
          }
      in
      with_daemon ~socket ?fault (fun pid ->
          let reference = local_code jacobi_src in
          let served = ref 0 in
          for i = 1 to 40 do
            match
              Client.compile ~socket ~options
                ~name:(Printf.sprintf "c%d.c" i)
                ~source:jacobi_src ()
            with
            | `No_daemon -> ()
            | `Daemon (Error _) -> ()
            | `Daemon (Ok r) ->
                if not (Client.is_busy r) then begin
                  incr served;
                  Alcotest.(check (option string))
                    "chaos-served answer bit-identical" (Some reference)
                    r.Client.r_entry.Manifest.e_code
                end
          done;
          Alcotest.(check bool) "round trips survived injection" true
            (!served > 0);
          (* stats itself can be hit by injection: retry the round trip *)
          let rec stats_line k =
            match Client.stats ~socket with
            | Ok line -> line
            | Error _ when k > 0 ->
                Unix.sleepf 0.05;
                stats_line (k - 1)
            | Error msg ->
                Alcotest.failf "stats never answered under chaos: %s" msg
          in
          let line = stats_line 20 in
          List.iter
            (fun site ->
              Alcotest.(check bool) (site ^ " actually injected") true
                (counter_in_line line ("fault." ^ site) >= 1))
            [ "server.accept"; "server.read"; "server.write" ];
          Alcotest.(check int) "no event-loop crashes under chaos" 0
            (counter_in_line line "server.crashes");
          let rec shutdown_retry k =
            Client.shutdown ~socket
            || k > 0
               && begin
                    Unix.sleepf 0.05;
                    shutdown_retry (k - 1)
                  end
          in
          ignore (shutdown_retry 20 : bool);
          Alcotest.(check bool) "daemon drained and exited 0" true
            (wait_exit pid = Unix.WEXITED 0)))

(* --------------------------- signal-exit cleanup --------------------------- *)

(* Pool.with_temp_dir must remove its directory when the process dies to
   SIGTERM mid-body, not only on normal return (the plutocc/plutod
   interrupted-run guarantee). *)
let test_temp_dir_cleanup_on_sigterm () =
  let pipe_r, pipe_w = Unix.pipe () in
  let pid = Unix.fork () in
  if pid = 0 then begin
    (try
       Unix.close pipe_r;
       Pool.with_temp_dir ~prefix:"sigterm" (fun dir ->
           let msg = dir ^ "\n" in
           ignore
             (Unix.write_substring pipe_w msg 0 (String.length msg));
           Unix.close pipe_w;
           (* park until the parent kills us *)
           Unix.sleepf 30.0)
     with _ -> ());
    Unix._exit 0
  end;
  Unix.close pipe_w;
  let buf = Buffer.create 128 in
  let chunk = Bytes.create 256 in
  let rec read_dir () =
    match Unix.read pipe_r chunk 0 (Bytes.length chunk) with
    | 0 -> Buffer.contents buf
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        if Bytes.index_opt (Bytes.sub chunk 0 n) '\n' <> None then
          Buffer.contents buf
        else read_dir ()
  in
  let dir = String.trim (read_dir ()) in
  Unix.close pipe_r;
  Alcotest.(check bool) "child created its temp dir" true
    (dir <> "" && Sys.file_exists dir);
  Unix.kill pid Sys.sigterm;
  let st = wait_exit pid in
  Alcotest.(check bool) "child died to the signal" true
    (st = Unix.WSIGNALED Sys.sigterm);
  (* the signal handler must have removed the directory on the way out *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Sys.file_exists dir && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.02
  done;
  Alcotest.(check bool) "temp dir removed by the signal-exit cleanup" false
    (Sys.file_exists dir)

let suite =
  ( "server",
    [
      Alcotest.test_case "options wire round trip" `Quick test_options_wire;
      Alcotest.test_case "request digest" `Quick test_request_digest;
      Alcotest.test_case "manifest entry round trip" `Quick
        test_entry_roundtrip;
      Alcotest.test_case "client falls back when no daemon listens" `Quick
        test_no_daemon_fallback;
      Fixtures.stats_case "compile parity, result cache, admin ops" `Quick
        test_compile_parity_and_admin;
      Fixtures.stats_case "concurrent identical requests coalesce" `Quick
        test_dedup_coalesces;
      Fixtures.stats_case "SIGKILL, then warm restart from the store" `Quick
        test_sigkill_warm_restart;
      Fixtures.stats_case "deadline expiry is a structured failure" `Quick
        test_deadline_expiry;
      Fixtures.stats_case "SIGTERM drains in-flight work" `Quick
        test_sigterm_drains;
      Fixtures.stats_case "oversize request gets bad-request + close" `Quick
        test_oversize_request;
      Fixtures.stats_case "pipeline cap overflows to server-busy" `Quick
        test_pipeline_cap_busy;
      Fixtures.stats_case "queue cap overflows to server-busy" `Quick
        test_queue_cap_busy;
      Fixtures.stats_case "solver caches evict under --solver-cache-entries"
        `Quick test_solver_cache_eviction;
      Fixtures.stats_case "slow reader hits output backpressure" `Quick
        test_slow_reader_backpressure;
      Fixtures.stats_case "chaos on server fault sites" `Quick
        test_chaos_fault_sites;
      Alcotest.test_case "with_temp_dir cleans up on SIGTERM" `Quick
        test_temp_dir_cleanup_on_sigterm;
    ] )
