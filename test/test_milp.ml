(* Exact simplex, branch-and-bound and lexicographic minimization. *)

let qi = Q.of_int

let test_lp_known () =
  (* min -x-y s.t. x+2y<=4, 3x+y<=6, x,y>=0: vertex (8/5,6/5), value -14/5 *)
  let sys =
    Polyhedra.of_constrs 2
      [ Polyhedra.ge_ints [ -1; -2; 4 ]; Polyhedra.ge_ints [ -3; -1; 6 ] ]
  in
  match Milp.lp ~nonneg:true sys [| qi (-1); qi (-1) |] with
  | Milp.Lp_optimal (v, x) ->
      Alcotest.(check bool) "value" true (Q.equal v (Q.of_ints (-14) 5));
      Alcotest.(check bool) "x" true (Q.equal x.(0) (Q.of_ints 8 5));
      Alcotest.(check bool) "y" true (Q.equal x.(1) (Q.of_ints 6 5))
  | _ -> Alcotest.fail "expected optimum"

let test_lp_infeasible () =
  let sys =
    Polyhedra.of_constrs 1
      [ Polyhedra.ge_ints [ 1; -5 ]; Polyhedra.ge_ints [ -1; 3 ] ]
  in
  match Milp.lp sys [| Q.one |] with
  | Milp.Lp_infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_lp_unbounded () =
  let sys = Polyhedra.of_constrs 1 [ Polyhedra.ge_ints [ -1; 10 ] ] in
  match Milp.lp sys [| Q.one |] with
  | Milp.Lp_unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_lp_free_vars () =
  (* min x s.t. x >= -7 over free variables *)
  match Milp.lp (Polyhedra.of_constrs 1 [ Polyhedra.ge_ints [ 1; 7 ] ]) [| Q.one |] with
  | Milp.Lp_optimal (v, _) ->
      Alcotest.(check bool) "min = -7" true (Q.equal v (qi (-7)))
  | _ -> Alcotest.fail "expected optimum"

let test_lp_equalities () =
  (* min x+y s.t. x+y = 3, x,y >= 0 *)
  let sys = Polyhedra.of_constrs 2 [ Polyhedra.eq_ints [ 1; 1; -3 ] ] in
  match Milp.lp ~nonneg:true sys [| Q.one; Q.one |] with
  | Milp.Lp_optimal (v, _) -> Alcotest.(check bool) "3" true (Q.equal v (qi 3))
  | _ -> Alcotest.fail "expected optimum"

let test_ilp_gap () =
  (* LP relax optimum fractional: max x+y st 2x+2y <= 5 (min -x-y) -> LP -5/2,
     ILP -2 *)
  let sys = Polyhedra.of_constrs 2 [ Polyhedra.ge_ints [ -2; -2; 5 ] ] in
  match Milp.ilp ~nonneg:true sys (Vec.of_int_list [ -1; -1 ]) with
  | Milp.Ilp_optimal (v, x) ->
      Alcotest.(check int) "ilp value" (-2) (Bigint.to_int v);
      Alcotest.(check bool) "witness feasible" true (Polyhedra.sat_point sys x)
  | _ -> Alcotest.fail "expected integer optimum"

let test_ilp_integer_empty_rational_nonempty () =
  (* 2x = 1: rationally feasible, integrally empty *)
  let sys = Polyhedra.of_constrs 1 [ Polyhedra.eq_ints [ 2; -1 ] ] in
  Alcotest.(check bool) "rational nonempty" false (Polyhedra.is_empty_rational sys);
  match Milp.feasible sys with
  | None -> ()
  | Some _ -> Alcotest.fail "expected integer-infeasible"

let test_lexmin () =
  (* x+y>=3, x<=2, 0<=x,y<=10: lexmin = (0,3) *)
  let sys =
    Polyhedra.of_constrs 2
      [
        Polyhedra.ge_ints [ 1; 1; -3 ];
        Polyhedra.ge_ints [ -1; 0; 2 ];
        Polyhedra.ge_ints [ 1; 0; 0 ];
        Polyhedra.ge_ints [ 0; 1; 0 ];
        Polyhedra.ge_ints [ 0; -1; 10 ];
      ]
  in
  (match Milp.lexmin sys with
  | Some x ->
      Alcotest.(check (list int)) "lexmin" [ 0; 3 ]
        (Array.to_list (Array.map Bigint.to_int x))
  | None -> Alcotest.fail "expected a point");
  (* priority order reversed: minimize y first: x <= 2 forces y >= 1, so the
     y-first minimum is (2,1) *)
  match Milp.lexmin_order sys [ 1; 0 ] with
  | Some x ->
      Alcotest.(check (list int)) "lexmin yx" [ 2; 1 ]
        (Array.to_list (Array.map Bigint.to_int x))
  | None -> Alcotest.fail "expected a point"

let test_lexmin_unbounded () =
  (* both the warm and cold paths must raise the structured diagnostic, not a
     raw Failure — the driver ladder only knows how to absorb Diag errors *)
  let sys = Polyhedra.of_constrs 1 [ Polyhedra.ge_ints [ -1; 0 ] ] in
  List.iter
    (fun warm ->
      match Milp.lexmin ~warm sys with
      | exception Diag.Diagnostic d ->
          Alcotest.(check string)
            (Printf.sprintf "diagnostic code (warm=%b)" warm)
            "unbounded" d.Diag.code
      | exception e ->
          Alcotest.failf "expected Diag.Diagnostic, got %s"
            (Printexc.to_string e)
      | _ -> Alcotest.fail "expected an unbounded diagnostic")
    [ true; false ]

(* ---- property: ILP agrees with brute force on random bounded systems ---- *)

let arb_ilp =
  QCheck.make
    ~print:(fun (sys, obj) ->
      Putil.string_of_format (Polyhedra.pp ?names:None) sys
      ^ " obj=" ^ Putil.string_of_format Vec.pp obj)
    QCheck.Gen.(
      let n = 3 in
      let* ncons = int_range 1 5 in
      let* rows =
        list_repeat ncons
          (let* coefs = list_repeat (n + 1) (int_range (-4) 4) in
           let* iseq = int_range 0 7 in
           return (coefs, iseq = 0))
      in
      let* obj = list_repeat n (int_range (-3) 3) in
      let box =
        List.concat_map
          (fun j ->
            [
              Polyhedra.ge_ints
                (List.init (n + 1) (fun q -> if q = j then 1 else if q = n then 5 else 0));
              Polyhedra.ge_ints
                (List.init (n + 1) (fun q -> if q = j then -1 else if q = n then 5 else 0));
            ])
          (Putil.range n)
      in
      let cs =
        List.map
          (fun (c, e) -> if e then Polyhedra.eq_ints c else Polyhedra.ge_ints c)
          rows
      in
      return (Polyhedra.of_constrs n (box @ cs), Vec.of_int_list obj))

let brute_force sys obj =
  let best = ref None in
  for x = -5 to 5 do
    for y = -5 to 5 do
      for z = -5 to 5 do
        let p = Array.map Bigint.of_int [| x; y; z |] in
        if Polyhedra.sat_point sys p then begin
          let v = Vec.dot obj p in
          match !best with
          | Some b when Bigint.compare b v <= 0 -> ()
          | _ -> best := Some v
        end
      done
    done
  done;
  !best

let prop_ilp_vs_brute =
  QCheck.Test.make ~name:"ILP matches brute force" ~count:150 arb_ilp
    (fun (sys, obj) ->
      match (Milp.ilp sys obj, brute_force sys obj) with
      | Milp.Ilp_optimal (v, x), Some b ->
          Bigint.equal v b && Polyhedra.sat_point sys x
      | Milp.Ilp_infeasible, None -> true
      | Milp.Ilp_unbounded, _ -> false
      | Milp.Ilp_optimal _, None | Milp.Ilp_infeasible, Some _ -> false)

let prop_lexmin_is_lex_minimal =
  QCheck.Test.make ~name:"lexmin is lexicographically minimal" ~count:100
    arb_ilp (fun (sys, _) ->
      match Milp.lexmin sys with
      | None -> brute_force sys (Vec.zero 3) = None
      | Some x ->
          let xv = Array.map Bigint.to_int x in
          Polyhedra.sat_point sys x
          &&
          let ok = ref true in
          for a = -5 to 5 do
            for b = -5 to 5 do
              for c = -5 to 5 do
                let p = Array.map Bigint.of_int [| a; b; c |] in
                if Polyhedra.sat_point sys p && [ a; b; c ] < Array.to_list xv
                then ok := false
              done
            done
          done;
          !ok)

(* Lexmin tie-breaking: many points share the minimal first component; the
   later objective components must break the tie, in order. *)
let test_lexmin_tie_breaking () =
  (* x + y + z = 6, 0 <= x,y,z <= 6.  Plain lexmin: (0,0,6). *)
  let sys =
    Polyhedra.of_constrs 3
      [
        Polyhedra.eq_ints [ 1; 1; 1; -6 ];
        Polyhedra.ge_ints [ 1; 0; 0; 0 ];
        Polyhedra.ge_ints [ 0; 1; 0; 0 ];
        Polyhedra.ge_ints [ 0; 0; 1; 0 ];
        Polyhedra.ge_ints [ -1; 0; 0; 6 ];
        Polyhedra.ge_ints [ 0; -1; 0; 6 ];
        Polyhedra.ge_ints [ 0; 0; -1; 6 ];
      ]
  in
  (match Milp.lexmin sys with
  | Some x ->
      Alcotest.(check (list int))
        "lexmin breaks the x-tie on y, then z" [ 0; 0; 6 ]
        (Array.to_list (Array.map Bigint.to_int x))
  | None -> Alcotest.fail "expected a point");
  (* same optimum for the first component under order [z; y; x]: all points
     with z = 6 force x = y = 0, so the tie never propagates *)
  (match Milp.lexmin_order sys [ 2; 1; 0 ] with
  | Some x ->
      Alcotest.(check (list int))
        "explicit order minimizes z first" [ 6; 0; 0 ]
        (Array.to_list (Array.map Bigint.to_int x))
  | None -> Alcotest.fail "expected a point");
  (* order [y; x] leaves z free to take the slack *)
  match Milp.lexmin_order sys [ 1; 0 ] with
  | Some x ->
      Alcotest.(check (list int))
        "partial order still yields a feasible completion" [ 0; 0; 6 ]
        (Array.to_list (Array.map Bigint.to_int x))
  | None -> Alcotest.fail "expected a point"

(* An exhausted budget must surface as Diag.Budget_exceeded — never as a
   silently wrong "optimum" and never as infeasibility. *)
let test_budget_exhaustion_raises () =
  (* integer-empty strip (odd = even is impossible): branch-and-bound has to
     branch at least once, so a one-node budget cannot finish *)
  let sys =
    Polyhedra.of_constrs 2
      [
        Polyhedra.eq_ints [ 2; -2; -1 ];
        Polyhedra.ge_ints [ 1; 0; 0 ];
        Polyhedra.ge_ints [ -1; 0; 1000 ];
        Polyhedra.ge_ints [ 0; 1; 0 ];
        Polyhedra.ge_ints [ 0; -1; 1000 ];
      ]
  in
  let tiny = { Milp.max_nodes = 1; Milp.time_limit_s = None } in
  (match Milp.ilp ~budget:tiny sys (Vec.of_int_list [ 1; 1 ]) with
  | exception Diag.Budget_exceeded _ -> ()
  | Milp.Ilp_optimal _ -> Alcotest.fail "budget ignored: reported an optimum"
  | Milp.Ilp_infeasible ->
      Alcotest.fail "budget ignored: reported infeasible"
  | Milp.Ilp_unbounded -> Alcotest.fail "budget ignored: reported unbounded");
  (match Milp.feasible ~budget:tiny sys with
  | exception Diag.Budget_exceeded _ -> ()
  | Some _ -> Alcotest.fail "feasible under exhausted budget"
  | None -> Alcotest.fail "infeasible under exhausted budget");
  (match Milp.lexmin ~budget:tiny sys with
  | exception Diag.Budget_exceeded _ -> ()
  | Some _ | None -> Alcotest.fail "lexmin answered under exhausted budget");
  (* an elapsed time limit trips immediately, even on an easy system *)
  let expired = { Milp.max_nodes = max_int; Milp.time_limit_s = Some 0.0 } in
  let easy =
    Polyhedra.of_constrs 1
      [ Polyhedra.ge_ints [ 1; -3 ]; Polyhedra.ge_ints [ -1; 9 ] ]
  in
  match Milp.lexmin ~budget:expired easy with
  | exception Diag.Budget_exceeded _ -> ()
  | Some _ | None -> Alcotest.fail "expired time budget ignored"

(* The time budget is documented as a wall-clock allowance, and the deadline
   clock (Milp.now, used to arm and check every deadline) must measure wall
   time.  The historical bug used Sys.time — CPU time — which stands still
   while the process sleeps, so a blocked-but-idle solve could never trip its
   limit.  Sleeping is exactly the discriminating workload: wall time
   advances, CPU time does not. *)
let test_time_budget_is_wall_clock () =
  let w0 = Milp.now () and c0 = Sys.time () in
  Unix.sleepf 0.05;
  let w1 = Milp.now () and c1 = Sys.time () in
  Alcotest.(check bool)
    "deadline clock advances across a sleep (wall time)" true
    (w1 -. w0 >= 0.04);
  Alcotest.(check bool) "the sleep consumed (almost) no CPU time" true
    (c1 -. c0 < 0.04);
  (* end to end: a deadline armed before a sleep-length wait has expired by
     solve time even though the process was idle the whole while *)
  let easy =
    Polyhedra.of_constrs 1
      [ Polyhedra.ge_ints [ 1; -3 ]; Polyhedra.ge_ints [ -1; 9 ] ]
  in
  let tiny = { Milp.max_nodes = max_int; Milp.time_limit_s = Some 1e-4 } in
  Unix.sleepf 0.01;
  match Milp.lexmin ~budget:tiny easy with
  | exception Diag.Budget_exceeded _ -> ()
  | Some _ | None ->
      (* the deadline is armed inside the call, so an instant solve may
         legitimately finish; what must never happen is the solver taking
         longer than the allowance without tripping.  Force the issue with a
         zero-allowance solve (deadline already past once armed). *)
      let zero = { Milp.max_nodes = max_int; Milp.time_limit_s = Some 0.0 } in
      (match Milp.lexmin ~budget:zero easy with
      | exception Diag.Budget_exceeded _ -> ()
      | Some _ | None -> Alcotest.fail "wall-clock deadline never tripped")

let suite =
  ( "milp",
    [
      Alcotest.test_case "LP known optimum" `Quick test_lp_known;
      Alcotest.test_case "LP infeasible" `Quick test_lp_infeasible;
      Alcotest.test_case "LP unbounded" `Quick test_lp_unbounded;
      Alcotest.test_case "LP free variables" `Quick test_lp_free_vars;
      Alcotest.test_case "LP equalities" `Quick test_lp_equalities;
      Alcotest.test_case "ILP integrality gap" `Quick test_ilp_gap;
      Alcotest.test_case "ILP integer-empty" `Quick test_ilp_integer_empty_rational_nonempty;
      Alcotest.test_case "lexmin" `Quick test_lexmin;
      Alcotest.test_case "lexmin unbounded" `Quick test_lexmin_unbounded;
      Alcotest.test_case "lexmin tie-breaking" `Quick test_lexmin_tie_breaking;
      Alcotest.test_case "budget exhaustion raises" `Quick
        test_budget_exhaustion_raises;
      Alcotest.test_case "time budget is wall clock" `Quick
        test_time_budget_is_wall_clock;
      QCheck_alcotest.to_alcotest prop_ilp_vs_brute;
      QCheck_alcotest.to_alcotest prop_lexmin_is_lex_minimal;
    ] )
