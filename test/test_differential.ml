(* Differential testing: random programs from lib/gen are compiled under a
   matrix of pipeline options — including options that force each rung of the
   graceful-degradation ladder — and the generated code is interpreted and
   compared bit-for-bit against the original program order.  A slice of the
   runs is additionally put through the translation validator.

   The RNG seed is printed on startup and overridable with PLUTO_FUZZ_SEED;
   any failing program is dumped to disk (PLUTO_FUZZ_DUMP_DIR or the temp
   dir) with its path printed, so failures reproduce exactly.

   PLUTO_FUZZ_N overrides the number of generated programs;
   PLUTO_FUZZ_SECONDS switches to a wall-clock budget instead (the CI
   fuzz-smoke job runs with PLUTO_FUZZ_SECONDS=60). *)

let getenv_pos = Fixtures.getenv_pos
let nprograms = Option.value (getenv_pos "PLUTO_FUZZ_N") ~default:200
let seconds = getenv_pos "PLUTO_FUZZ_SECONDS"

(* The option matrix.  Every program is compiled under [default] plus one
   rotating variant, so all variants see a steady stream of programs while
   the total compile count stays ~2x the program count.

   The base options carry a tight solver budget: some random programs make
   the hyperplane-search ILPs genuinely hard, and an uncapped search can burn
   tens of seconds on one input.  A capped search that degrades down the
   ladder is exactly the behavior the suite wants to cover — the fallback's
   output is differential-tested all the same. *)
let base =
  {
    Driver.default_options with
    Driver.auto =
      {
        Pluto.Auto.default_config with
        Pluto.Auto.budget =
          { Milp.max_nodes = 10_000; Milp.time_limit_s = Some 0.1 };
        Pluto.Auto.search_time_limit_s = Some 0.5;
      };
  }

let force_budget =
  { Milp.default_budget with Milp.time_limit_s = Some 0.0 }

let variants =
  [
    ("notile", { base with Driver.tile = false });
    ( "seq-nointra",
      { base with Driver.parallelize = false; intra_reorder = false } );
    ( "legality-only",
      {
        base with
        Driver.auto =
          { base.Driver.auto with Pluto.Auto.use_cost_bound = false };
      } );
    (* coeff_bound 0 leaves the Pluto search no legal hyperplanes: the ladder
       must degrade to the Feautrier rung.  The fast path is pinned off:
       these two variants exist to exercise specific lower rungs, and a fast
       accept would bypass them (coeff_bound 0 is also a fast-path gate, but
       the pin keeps the variant's intent independent of that rule). *)
    ( "rung-feautrier",
      {
        base with
        Driver.fast_schedule = false;
        auto = { base.Driver.auto with Pluto.Auto.coeff_bound = 0 };
      } );
    (* an exhausted solver budget fails both scheduling rungs: the ladder
       must fall through to the identity rung (the Milp budget does not gate
       the FM-only fast matcher, so it must be pinned off here too) *)
    ( "rung-identity",
      {
        base with
        Driver.fast_schedule = false;
        auto = { base.Driver.auto with Pluto.Auto.budget = force_budget };
      } );
    (* reduction-aware scheduling: programs whose self-updates get marked are
       compared with the reduction tolerance (their schedules legitimately
       reassociate); programs with nothing to mark must stay bit-exact, so
       the flag is differentially a no-op on them *)
    ("reductions", { base with Driver.reductions = true });
  ]

let params =
  Array.of_list (List.map snd Gen.check_params)

let fail_with_reproducer (g : Gen.t) ~config fmt =
  Printf.ksprintf
    (fun msg ->
      let path =
        Fixtures.dump_reproducer ~name:g.Gen.gen_name g.Gen.gen_source
      in
      Alcotest.failf "%s [%s]: %s\nreproducer: %s\nseed: %d" g.Gen.gen_name
        config msg path Fixtures.fuzz_seed)
    fmt

let check_one (g : Gen.t) ~config options =
  match
    Driver.compile_source_robust ~options ~name:g.Gen.gen_name
      g.Gen.gen_source
  with
  | Error ds ->
      fail_with_reproducer g ~config "robust compilation failed: %s"
        (Format.asprintf "%a" (Diag.pp_all ?src:None) ds)
  | Ok (r, _warns) ->
      (* marked-reduction programs are owed equivalence only up to
         floating-point reassociation; everything else stays bit-exact *)
      let tolerance =
        if
          options.Driver.reductions
          && List.exists (fun d -> d.Deps.reduction) r.Driver.deps
        then Some Machine.reduction_tolerance
        else None
      in
      if
        not (Machine.equivalent ?tolerance r.Driver.program r.Driver.code ~params)
      then
        fail_with_reproducer g ~config
          "transformed code disagrees with original order";
      (* adversarial parallelism check: running every parallel-marked loop
         backwards must not change the result (no-op when nothing is marked) *)
      if
        not
          (Machine.equivalent ~par_reverse:true ?tolerance r.Driver.program
             r.Driver.code ~params)
      then
        fail_with_reproducer g ~config
          "reversing a parallel-marked loop changes the result";
      r

let validate (g : Gen.t) ~config (r : Driver.result) =
  let rep = Driver.verify ~params r in
  if not (Verify.ok rep) then
    fail_with_reproducer g ~config "translation validation failed: %s"
      (Format.asprintf "%a" Verify.pp_report rep)

let test_differential () =
  Fixtures.announce_seed ();
  let st = Gen.state_of_seed Fixtures.fuzz_seed in
  let t0 = Unix.gettimeofday () in
  let keep_going i =
    match seconds with
    | Some s -> Unix.gettimeofday () -. t0 < float_of_int s
    | None -> i < nprograms
  in
  let compiles = ref 0 in
  let validations = ref 0 in
  let i = ref 0 in
  while keep_going !i do
    let g = Gen.generate st in
    let t1 = Unix.gettimeofday () in
    let r = check_one g ~config:"default" base in
    incr compiles;
    let t2 = Unix.gettimeofday () in
    let vname, vopts = List.nth variants (!i mod List.length variants) in
    let _ = check_one g ~config:vname vopts in
    incr compiles;
    let t3 = Unix.gettimeofday () in
    if t3 -. t1 > 1.0 then
      Printf.eprintf "slow: %s default=%.1fs %s=%.1fs\n%!" g.Gen.gen_name
        (t2 -. t1) vname (t3 -. t2);
    (* full translation validation on a slice of the stream *)
    if !i mod 20 = 0 then begin
      validate g ~config:"default" r;
      incr validations
    end;
    incr i
  done;
  Printf.eprintf
    "differential: %d programs, %d compiles, %d validations, %.1fs\n%!" !i
    !compiles !validations
    (Unix.gettimeofday () -. t0);
  Alcotest.(check bool)
    "ran a meaningful number of differential compiles (>= 200 unless \
     narrowed by PLUTO_FUZZ_N/PLUTO_FUZZ_SECONDS)"
    true
    (!compiles >= 2 * min nprograms 100 || seconds <> None)

(* The generator's own invariant: everything it emits parses. *)
let test_generator_parses () =
  Fixtures.announce_seed ();
  let st = Random.State.make [| Fixtures.fuzz_seed + 1 |] in
  for _ = 1 to 100 do
    let g = Gen.generate st in
    match Gen.parse g with
    | (_ : Ir.program) -> ()
    | exception e ->
        ignore
          (Fixtures.dump_reproducer ~name:g.Gen.gen_name g.Gen.gen_source);
        Alcotest.failf "%s: generator emitted unparsable source: %s"
          g.Gen.gen_name (Printexc.to_string e)
  done

let suite =
  ( "differential",
    [
      Alcotest.test_case "generator emits parsable programs" `Quick
        test_generator_parses;
      Alcotest.test_case "random programs vs original order" `Slow
        test_differential;
    ] )
