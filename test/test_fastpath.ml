(* The fast scheduling path (lib/core/fastmatch), differentially tested
   against the exact ILP:

   - every kernel of the corpus is compiled twice — fast path on (the
     default) and off — and both results must execute bit-identically to
     the original program order (hence to each other), including with every
     parallel-marked loop run backwards;
   - a rejection must degrade cleanly: a ["fastpath-rejected"] warning (not
     an error, not a degradation) and generated code identical to what the
     pure ILP pipeline emits;
   - a slice of random programs from lib/gen goes through the same
     comparison;
   - property tests on the matcher itself: accepted schedules are loop
     permutations (each statement pivots each iterator at most once),
     fusion partitions cover every statement exactly once, and the matcher
     is deterministic (same input, same transform — the property that makes
     PLUTO_FUZZ_SEED reproduce failures);
   - the point of the subsystem: with the fast path on, scheduling-time ILP
     solves over the kernel corpus drop at least 5x;
   - the [--break-fastpath] hook proves the validator actually guards the
     accept: a corrupted fast schedule is rejected end to end;
   - fast-path store entries are stamped with the matcher version, so a
     version bump is a cache miss, never a stale schedule. *)

let nofast = { Driver.default_options with Driver.fast_schedule = false }

let code_text (r : Driver.result) =
  Putil.string_of_format Codegen.print_c r.Driver.code

let pp_diags ds = Format.asprintf "%a" (Diag.pp_all ?src:None) ds

let robust ?(options = Driver.default_options) name p =
  match Driver.compile_robust ~options p with
  | Ok (r, ds) -> (r, ds)
  | Error ds -> Alcotest.failf "%s: robust compile failed: %s" name (pp_diags ds)

let fastpath_verdict name ds =
  let acc = Diag.has_code ds "fastpath-accepted" in
  let rej = Diag.has_code ds "fastpath-rejected" in
  Alcotest.(check bool)
    (name ^ ": exactly one fast-path verdict (accepted or rejected)")
    true (acc <> rej);
  acc

(* ----------------------- kernel corpus differential ----------------------- *)

let test_kernel_differential () =
  let accepted = ref [] and rejected = ref [] in
  List.iter
    (fun (k : Kernels.t) ->
      let name = k.Kernels.name in
      let p = Kernels.program k in
      let params = Kernels.params_vector p k.Kernels.check_params in
      let fast_r, fast_ds = robust name p in
      let ilp_r, ilp_ds = robust ~options:nofast name p in
      Alcotest.(check bool) (name ^ ": no errors") false
        (Diag.has_errors fast_ds);
      Alcotest.(check bool) (name ^ ": not degraded") false
        (Driver.degraded fast_ds);
      Alcotest.(check bool)
        (name ^ ": fast path off leaves no fast-path diagnostics") false
        (Diag.has_code ilp_ds "fastpath-accepted"
        || Diag.has_code ilp_ds "fastpath-rejected");
      (* both pipelines must execute bit-identically to the original
         program order — and therefore to each other *)
      Alcotest.(check bool) (name ^ ": fast-on output = original order") true
        (Machine.equivalent p fast_r.Driver.code ~params);
      Alcotest.(check bool) (name ^ ": ILP output = original order") true
        (Machine.equivalent p ilp_r.Driver.code ~params);
      (* adversarial parallelism: reversing any parallel-marked loop of the
         fast-path result must not change the answer *)
      Alcotest.(check bool) (name ^ ": parallel marks safe under reversal")
        true
        (Machine.equivalent ~par_reverse:true p fast_r.Driver.code ~params);
      if fastpath_verdict name fast_ds then accepted := name :: !accepted
      else begin
        rejected := name :: !rejected;
        (* clean rejection: the fall-through lands on exactly the code the
           pure ILP pipeline emits *)
        Alcotest.(check string)
          (name ^ ": rejection degrades to the exact ILP result")
          (code_text ilp_r) (code_text fast_r)
      end)
    Kernels.all;
  Printf.eprintf "fastpath: accepted %d (%s); rejected %d (%s)\n%!"
    (List.length !accepted)
    (String.concat " " (List.rev !accepted))
    (List.length !rejected)
    (String.concat " " (List.rev !rejected));
  Alcotest.(check bool) "the fast path accepts a real slice of the corpus"
    true
    (List.length !accepted >= 3)

(* --------------------- random-program differential slice ------------------ *)

(* Tight solver budgets keep adversarial random programs cheap; degradations
   down the ladder are fine — the output is differential-tested all the
   same.  (Code equality between the two runs is NOT asserted here: the
   wall-clock budgets make which rung wins timing-dependent.) *)
let random_base =
  {
    Driver.default_options with
    Driver.auto =
      {
        Pluto.Auto.default_config with
        Pluto.Auto.budget =
          { Milp.max_nodes = 10_000; Milp.time_limit_s = Some 0.1 };
        Pluto.Auto.search_time_limit_s = Some 0.5;
      };
  }

let test_random_differential () =
  Fixtures.announce_seed ();
  let st = Gen.state_of_seed Fixtures.fuzz_seed in
  let params = Array.of_list (List.map snd Gen.check_params) in
  let naccepted = ref 0 in
  let n = 40 in
  for _ = 1 to n do
    let g = Gen.generate st in
    let run config options =
      match
        Driver.compile_source_robust ~options ~name:g.Gen.gen_name
          g.Gen.gen_source
      with
      | Ok (r, ds) -> (r, ds)
      | Error ds ->
          let path =
            Fixtures.dump_reproducer ~name:g.Gen.gen_name g.Gen.gen_source
          in
          Alcotest.failf "%s [%s]: robust compile failed: %s\nreproducer: %s"
            g.Gen.gen_name config (pp_diags ds) path
    in
    let fast_r, fast_ds = run "fast" random_base in
    let ilp_r, _ =
      run "nofast" { random_base with Driver.fast_schedule = false }
    in
    let check_equiv what r =
      if not (Machine.equivalent r.Driver.program r.Driver.code ~params) then begin
        let path =
          Fixtures.dump_reproducer ~name:g.Gen.gen_name g.Gen.gen_source
        in
        Alcotest.failf "%s: %s disagrees with original order\nreproducer: %s"
          g.Gen.gen_name what path
      end
    in
    check_equiv "fast-on output" fast_r;
    check_equiv "fast-off output" ilp_r;
    if fastpath_verdict g.Gen.gen_name fast_ds then begin
      incr naccepted;
      if
        not
          (Machine.equivalent ~par_reverse:true fast_r.Driver.program
             fast_r.Driver.code ~params)
      then
        Alcotest.failf "%s: reversing a parallel loop changes the result"
          g.Gen.gen_name
    end
  done;
  Printf.eprintf "fastpath random differential: %d/%d accepted (seed %d)\n%!"
    !naccepted n Fixtures.fuzz_seed

(* ------------------------- matcher property tests ------------------------- *)

let try_schedule p ds =
  match Pluto.Fastmatch.schedule p ds with
  | t -> Ok t
  | exception Pluto.Fastmatch.No_fast_schedule msg -> Error msg

(* Transform signature for determinism comparisons: everything except the
   [satisfied_at] hashtable (whose physical layout is irrelevant). *)
let signature = function
  | Error msg -> Error msg
  | Ok (t : Pluto.Types.transform) ->
      Ok
        ( t.Pluto.Types.nlevels,
          Array.to_list t.Pluto.Types.kinds,
          Array.to_list
            (Array.map
               (fun rs -> Array.to_list (Array.map Array.to_list rs))
               t.Pluto.Types.rows) )

(* The corpus plus a seeded stream of random programs: every program the
   matcher accepts must satisfy the structural properties. *)
let property_programs () =
  let kernels =
    List.map
      (fun (k : Kernels.t) ->
        let p = Kernels.program k in
        (k.Kernels.name, p, Deps.compute p))
      Kernels.all
  in
  let st = Gen.state_of_seed Fixtures.fuzz_seed in
  let randoms =
    List.init 25 (fun _ ->
        let g = Gen.generate st in
        let p = Gen.parse g in
        (g.Gen.gen_name, p, Deps.compute p))
  in
  kernels @ randoms

let test_permutation_property () =
  Fixtures.announce_seed ();
  let naccepted = ref 0 in
  List.iter
    (fun (name, (p : Ir.program), ds) ->
      match try_schedule p ds with
      | Error _ -> ()
      | Ok t ->
          incr naccepted;
          List.iter
            (fun (s : Ir.stmt) ->
              let m = Ir.depth s in
              let perm = Pluto.Fastmatch.For_tests.permutation t s.Ir.id in
              List.iter
                (fun j ->
                  Alcotest.(check bool)
                    (Printf.sprintf "%s stmt %d: pivot %d in range" name
                       s.Ir.id j)
                    true
                    (j >= 0 && j < m))
                perm;
              Alcotest.(check bool)
                (Printf.sprintf
                   "%s stmt %d: pivots are distinct (a permutation)" name
                   s.Ir.id)
                true
                (List.length (List.sort_uniq compare perm)
                = List.length perm);
              Alcotest.(check bool)
                (Printf.sprintf "%s stmt %d: at most depth pivots" name
                   s.Ir.id)
                true
                (List.length perm <= m))
            p.Ir.stmts)
    (property_programs ());
  Alcotest.(check bool) "some programs accepted" true (!naccepted > 0)

let test_partition_property () =
  Fixtures.announce_seed ();
  List.iter
    (fun (name, (p : Ir.program), ds) ->
      match try_schedule p ds with
      | Error _ -> ()
      | Ok t ->
          let groups = Pluto.Fastmatch.For_tests.partition t in
          let flat = List.sort compare (List.concat groups) in
          Alcotest.(check (list int))
            (name ^ ": fusion partition covers every statement exactly once")
            (Putil.range (List.length p.Ir.stmts))
            flat;
          List.iter
            (fun g ->
              Alcotest.(check bool) (name ^ ": no empty fusion group") true
                (g <> []))
            groups)
    (property_programs ())

let test_matcher_deterministic () =
  Fixtures.announce_seed ();
  (* same seed, two independent passes over generator + matcher: the whole
     accept/reject/transform stream must replay exactly *)
  let pass () =
    let st = Gen.state_of_seed Fixtures.fuzz_seed in
    List.init 20 (fun _ ->
        let g = Gen.generate st in
        let p = Gen.parse g in
        let ds = Deps.compute p in
        let s1 = signature (try_schedule p ds) in
        (* and scheduling the very same program twice agrees with itself *)
        let s2 = signature (try_schedule p ds) in
        Alcotest.(check bool)
          (g.Gen.gen_name ^ ": matcher self-deterministic") true (s1 = s2);
        (g.Gen.gen_name, s1))
  in
  let a = pass () and b = pass () in
  Alcotest.(check bool)
    (Printf.sprintf
       "matcher replay under PLUTO_FUZZ_SEED=%d is exact across passes"
       Fixtures.fuzz_seed)
    true (a = b)

(* -------------------- scheduling-time ILP solve reduction ----------------- *)

(* "Scheduling-time" solves: dependence analysis also probes the ILP
   ([Milp.feasible_cached]), but those probes are memoized per system — so
   computing the dependences once beforehand and then resetting the counters
   leaves [milp.solves] counting only what the scheduling rungs spend. *)
let scheduling_solves options (p : Ir.program) =
  ignore (Deps.compute p : Deps.t list);
  Stats.reset ();
  (match Driver.compile_robust ~options p with
  | Ok _ -> ()
  | Error ds -> Alcotest.failf "compile failed: %s" (pp_diags ds));
  Fixtures.counter_of "milp.solves"

let test_ilp_solve_reduction () =
  let fast_total = ref 0 and ilp_total = ref 0 in
  List.iter
    (fun (k : Kernels.t) ->
      let p = Kernels.program k in
      let f = scheduling_solves Driver.default_options p in
      let n = scheduling_solves nofast p in
      Printf.eprintf "fastpath solves: %-18s fast=%-3d ilp=%d\n%!"
        k.Kernels.name f n;
      Alcotest.(check bool)
        (k.Kernels.name ^ ": fast path never costs extra scheduling solves")
        true (f <= n);
      fast_total := !fast_total + f;
      ilp_total := !ilp_total + n)
    Kernels.all;
  Printf.eprintf "fastpath solves: corpus total fast=%d ilp=%d\n%!" !fast_total
    !ilp_total;
  Alcotest.(check bool)
    (Printf.sprintf
       "fast path cuts scheduling-time ILP solves >= 5x over the corpus \
        (fast=%d, ilp=%d)"
       !fast_total !ilp_total)
    true
    (!ilp_total >= 5 * max 1 !fast_total)

(* --------------------------- the validator guard -------------------------- *)

let test_break_fastpath_is_caught () =
  let k = Kernels.matmul in
  let p = Kernels.program k in
  (* sanity: matmul is a kernel the matcher accepts... *)
  let _, clean_ds = robust k.Kernels.name p in
  Alcotest.(check bool) "matmul takes the fast path when unbroken" true
    (Diag.has_code clean_ds "fastpath-accepted");
  (* ...so a deliberately corrupted fast schedule exercises the guard: the
     validator must reject it and the ladder fall back to the exact ILP *)
  let broken =
    { Driver.default_options with Driver.break_fastpath = true }
  in
  let r, ds = robust ~options:broken k.Kernels.name p in
  Alcotest.(check bool) "poisoned schedule is rejected" true
    (Diag.has_code ds "fastpath-rejected");
  Alcotest.(check bool) "rejection is not a degradation" false
    (Driver.degraded ds);
  Alcotest.(check bool) "rejection is not an error" false (Diag.has_errors ds);
  let params = Kernels.params_vector p k.Kernels.check_params in
  Alcotest.(check bool) "fallback output = original order" true
    (Machine.equivalent p r.Driver.code ~params);
  (* and the fallback is exactly the ILP result *)
  let ilp_r, _ = robust ~options:nofast k.Kernels.name p in
  Alcotest.(check string) "fallback = exact ILP result" (code_text ilp_r)
    (code_text r)

(* ------------------------- store version stamping ------------------------- *)

let test_store_version_stamp () =
  Pool.with_temp_dir ~prefix:"fastpath" (fun dir ->
      Fun.protect
        ~finally:(fun () -> Store.set_dir None)
        (fun () ->
          Store.set_dir (Some dir);
          let v = Pluto.Fastmatch.version in
          Store.write_versioned ~version:v ~kind:"fastpath" ~key:"k"
            (42, "schedule");
          (match
             (Store.read_versioned ~version:v ~kind:"fastpath" ~key:"k"
               : (int * string) option)
           with
          | Some (42, "schedule") -> ()
          | _ -> Alcotest.fail "round-trip under the matcher version");
          (* a matcher version bump re-keys the entry: miss, not stale hit *)
          Alcotest.(check bool) "other version misses" true
            ((Store.read_versioned ~version:(v ^ "-next") ~kind:"fastpath"
                ~key:"k"
               : (int * string) option)
            = None);
          (* and the unversioned reader never sees versioned entries *)
          Alcotest.(check bool) "unversioned read misses" true
            ((Store.read ~kind:"fastpath" ~key:"k" : (int * string) option)
            = None)))

let suite =
  ( "fastpath",
    [
      Fixtures.stats_case "kernel corpus differential vs exact ILP" `Slow
        test_kernel_differential;
      Fixtures.stats_case "random program differential slice" `Slow
        test_random_differential;
      Alcotest.test_case "accepted schedules are permutations" `Quick
        test_permutation_property;
      Alcotest.test_case "fusion partitions cover statements once" `Quick
        test_partition_property;
      Alcotest.test_case "matcher deterministic under fixed seed" `Quick
        test_matcher_deterministic;
      Fixtures.stats_case "scheduling-time ILP solves cut >= 5x" `Slow
        test_ilp_solve_reduction;
      Fixtures.stats_case "--break-fastpath is caught by the validator" `Quick
        test_break_fastpath_is_caught;
      Alcotest.test_case "store entries are version-stamped" `Quick
        test_store_version_stamp;
    ] )
