(** plutocc — the end-to-end source-to-source tool (the paper's Figure 5):
    C-subset loop nests in, transformed OpenMP C out, with optional
    dependence/transformation dumps, semantic-equivalence checking against
    the original execution order, and performance simulation on the modelled
    multicore.

    Diagnostics are rendered gcc-style with source excerpts.  Exit codes:
    0 = success, 2 = code emitted but only after graceful degradation
    (a scheduling rung failed and a fallback was used), 1 = hard error
    (nothing emitted, or the equivalence check failed). *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Render diagnostics to stderr, with source excerpts when [src] is given. *)
let render ?src ds =
  if ds <> [] then Format.eprintf "%a@." (Diag.pp_all ?src) ds

(* "N=8000,T=64" — every malformed binding is reported, not just the first. *)
let parse_params spec =
  if String.trim spec = "" then Ok []
  else
    let bindings, errs =
      List.fold_left
        (fun (bs, es) kv ->
          match String.split_on_char '=' (String.trim kv) with
          | [ k; v ] -> (
              match int_of_string_opt (String.trim v) with
              | Some n -> ((String.trim k, n) :: bs, es)
              | None ->
                  ( bs,
                    Diag.errorf ~code:"cli"
                      "--params: value %S for %s is not an integer"
                      (String.trim v) (String.trim k)
                    :: es ))
          | _ ->
              ( bs,
                Diag.errorf ~code:"cli"
                  "--params: malformed binding %S (expected NAME=INT)"
                  (String.trim kv)
                :: es ))
        ([], [])
        (String.split_on_char ',' spec)
    in
    if errs = [] then Ok (List.rev bindings) else Error (List.rev errs)

exception Cli_error of Diag.t

let cli_error fmt = Printf.ksprintf (fun m -> raise (Cli_error (Diag.error ~code:"cli" m))) fmt

(* "64M", "512k", "2G" or plain bytes. *)
let parse_size spec =
  let s = String.trim spec in
  let n = String.length s in
  if n = 0 then cli_error "--cache-size: empty size"
  else
    let mult, digits =
      match s.[n - 1] with
      | 'k' | 'K' -> (1024, String.sub s 0 (n - 1))
      | 'm' | 'M' -> (1024 * 1024, String.sub s 0 (n - 1))
      | 'g' | 'G' -> (1024 * 1024 * 1024, String.sub s 0 (n - 1))
      | _ -> (1, s)
    in
    match int_of_string_opt (String.trim digits) with
    | Some v when v > 0 -> v * mult
    | _ ->
        cli_error "--cache-size: %S is not a positive size (try 64M, 512K, 2G)"
          spec

let no_daemon_note sock =
  render
    [
      Diag.note ~code:"connect-fallback"
        (Printf.sprintf "no daemon listening on %s; compiling locally" sock);
    ]

(* Shared tail of both batch paths (local pool and daemon connection):
   per-file stderr summary, optional JSON manifest, stdout fallback for the
   generated code, exit-code policy. *)
let finish_batch ~output ~batch_manifest (m : Batch.manifest) =
  List.iter
    (fun (e : Batch.entry) ->
      render e.Batch.e_diags;
      Format.eprintf "%s: %s (%s, %.2fs)@." e.Batch.e_file
        (Batch.status_name e.Batch.e_status)
        e.Batch.e_rung e.Batch.e_elapsed_s)
    m.Batch.m_entries;
  (match batch_manifest with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (Batch.manifest_to_json m)));
  (* without -o the generated code still has somewhere to go: stdout, each
     file prefixed so the concatenation stays attributable *)
  if output = None then
    List.iter
      (fun (e : Batch.entry) ->
        match e.Batch.e_code with
        | None -> ()
        | Some code ->
            Format.printf "/* %s */@.%s" e.Batch.e_file code;
            Format.print_flush ())
      m.Batch.m_entries;
  Batch.exit_code m

(* --batch: every positional file through [Batch.run] on the worker pool.
   [-o] names an output directory; per-file diagnostics render to stderr;
   the manifest (status, rung, diagnostics, timings per file plus aggregated
   counters) goes to --batch-manifest as JSON. *)
let run_batch ~files ~output ~options ~strict ~verify ~jobs ~batch_manifest
    ~batch_timeout ~cache_dir =
  let m =
    Batch.run ~options ~strict ~verify ~jobs ?task_timeout_s:batch_timeout
      ?cache_dir ?out_dir:output files
  in
  finish_batch ~output ~batch_manifest m

(* --batch --connect: the same files through one daemon connection,
   sequentially (the daemon itself fans out across its workers and clients).
   A request the daemon cannot answer (dropped connection mid-batch) is
   compiled locally — the batch always completes. *)
let run_batch_daemon fd ~files ~output ~options ~strict ~verify
    ~batch_manifest ~batch_timeout =
  let t0 = Unix.gettimeofday () in
  let compile_local file src t1 =
    let t = Batch.compile_one ~options ~strict ~verify (file, src) in
    let status =
      match t.Batch.t_code with
      | None -> Batch.Failed
      | Some _ ->
          if Driver.degraded t.Batch.t_diags then Batch.Degraded
          else Batch.Success
    in
    {
      Batch.e_file = file;
      e_status = status;
      e_rung = t.Batch.t_rung;
      e_diags = t.Batch.t_diags;
      e_code = t.Batch.t_code;
      e_output = None;
      e_elapsed_s = Unix.gettimeofday () -. t1;
      e_retried = false;
    }
  in
  let entries =
    List.map
      (fun file ->
        match read_file file with
        | exception Sys_error msg ->
            Batch.error_entry file (Diag.errorf ~code:"io" "%s" msg)
        | src -> (
            let t1 = Unix.gettimeofday () in
            match
              Client.compile_fd fd ?deadline_s:batch_timeout ~strict ~verify
                ~options ~name:file ~source:src ()
            with
            | Ok resp when Client.is_busy resp ->
                render
                  [
                    Diag.note ~code:"server-busy"
                      (Printf.sprintf
                         "daemon is at capacity for %s; compiling locally"
                         file);
                  ];
                compile_local file src t1
            | Ok resp -> { resp.Client.r_entry with Batch.e_file = file }
            | Error msg ->
                render
                  [
                    Diag.warningf ~code:"server"
                      "daemon request for %s failed (%s); compiling locally"
                      file msg;
                  ];
                compile_local file src t1))
      files
  in
  let entries = List.map (Batch.write_output output) entries in
  finish_batch ~output ~batch_manifest
    {
      Batch.m_jobs = 1;
      m_cache_dir = None;
      m_entries = entries;
      m_elapsed_s = Unix.gettimeofday () -. t0;
      m_counters = Stats.counters ();
    }

let run files output show_deps show_transform no_tile tile_size no_parallel
    wavefront no_intra_reorder no_input_deps unroll_jam check params_spec
    simulate cores native strict verify break_schedule tune tune_report jobs
    tune_budget stats stats_json cold_solver batch batch_manifest batch_timeout
    cache_dir cache_size fast_schedule break_fastpath reductions connect =
  if cold_solver then begin
    Milp.set_warm false;
    Polyhedra.set_empty_cache false
  end;
  Store.set_dir cache_dir;
  let options =
    {
      Driver.default_options with
      Driver.tile = not no_tile;
      tile_size;
      unroll_jam;
      parallelize = not no_parallel;
      wavefront;
      intra_reorder = not no_intra_reorder;
      auto =
        {
          Pluto.Auto.default_config with
          Pluto.Auto.input_deps = not no_input_deps;
        };
      fast_schedule;
      break_fastpath;
      reductions;
    }
  in
  let code =
    try
    (match cache_size with
    | None -> ()
    | Some spec -> Store.set_budget (Some (parse_size spec)));
    if batch then begin
      match connect with
      | Some sock -> (
          match Client.connect sock with
          | Some fd ->
              Fun.protect
                ~finally:(fun () -> Client.close fd)
                (fun () ->
                  run_batch_daemon fd ~files ~output ~options ~strict ~verify
                    ~batch_manifest ~batch_timeout)
          | None ->
              no_daemon_note sock;
              run_batch ~files ~output ~options ~strict ~verify ~jobs
                ~batch_manifest ~batch_timeout ~cache_dir)
      | None ->
          run_batch ~files ~output ~options ~strict ~verify ~jobs
            ~batch_manifest ~batch_timeout ~cache_dir
    end
    else
    match files with
    | [] | _ :: _ :: _ ->
        render
          [
            Diag.error ~code:"cli"
              "multiple input files require --batch (single-file mode takes \
               exactly one)";
          ];
        1
    | [ file ] -> (
    let src = read_file file in
    (* --connect: hand plain compilations to the daemon; anything needing
       in-process artifacts (tuning, checking, simulation, dumps, the
       sabotage hooks) stays local.  No daemon listening → fall back. *)
    let daemon_eligible =
      connect <> None
      && not
           (tune || check || simulate || native || show_deps || show_transform
          || break_schedule || cold_solver)
    in
    let daemon_code =
      if not daemon_eligible then None
      else begin
        let sock = Option.get connect in
        match
          Client.compile ~socket:sock ~strict ~verify ~options ~name:file
            ~source:src ()
        with
        | `No_daemon ->
            no_daemon_note sock;
            None
        | `Daemon (Error msg) ->
            render [ Diag.errorf ~code:"server" "daemon protocol error: %s" msg ];
            Some 1
        | `Daemon (Ok resp) when Client.is_busy resp ->
            (* admission rejection, not a compile failure: the daemon asked
               us to go away, so take the same road as `No_daemon *)
            render
              [
                Diag.note ~code:"server-busy"
                  "daemon is at capacity; compiling locally";
              ];
            None
        | `Daemon (Ok resp) ->
            let e = resp.Client.r_entry in
            render ~src e.Batch.e_diags;
            (match e.Batch.e_code with
            | None -> ()
            | Some code -> (
                match output with
                | None ->
                    print_string code;
                    flush stdout
                | Some path ->
                    let oc = open_out path in
                    Fun.protect
                      ~finally:(fun () -> close_out_noerr oc)
                      (fun () -> output_string oc code)));
            Some
              (match e.Batch.e_status with
              | Batch.Failed -> 1
              | Batch.Degraded -> 2
              | Batch.Success -> 0)
      end
    in
    match daemon_code with
    | Some code -> code
    | None -> (
    match parse_params params_spec with
    | Error ds ->
        render ds;
        1
    | Ok bindings -> (
        match Frontend.parse_program_diag ~name:file src with
        | Error ds ->
            render ~src ds;
            1
        | Ok (program, parse_warns) -> (
            render ~src parse_warns;
            let compiled =
              if not tune then Driver.compile_robust ~options ~strict program
              else begin
                (* autotune: search the configuration space, then continue the
                   normal pipeline (output/check/simulate) with the winner *)
                let seed = Gen.seed_of_env () in
                let cache_dir =
                  match Sys.getenv_opt "PLUTO_TUNE_CACHE" with
                  | Some "" -> None (* explicitly disabled *)
                  | Some d -> Some d
                  | None -> Some ".pluto-tune-cache"
                in
                let report, best =
                  Tune.search ~options ~jobs ~budget:tune_budget ?cache_dir
                    ~seed ~params:bindings program
                in
                Format.eprintf "%a@." Tune.pp_report_summary report;
                (match tune_report with
                | None -> ()
                | Some path ->
                    let oc = open_out path in
                    Fun.protect
                      ~finally:(fun () -> close_out_noerr oc)
                      (fun () -> output_string oc (Tune.report_to_json report)));
                match (best, report.Tune.r_best) with
                | Some r, Some o ->
                    let warns =
                      if o.Tune.o_degraded then
                        [
                          Diag.warning ~code:"degraded-tune"
                            "tuned best candidate was produced by a fallback \
                             scheduling rung";
                        ]
                      else []
                    in
                    Ok (r, warns)
                | _ ->
                    Error
                      [
                        Diag.error ~code:"tune"
                          "autotuning found no verified candidate";
                      ]
              end
            in
            match compiled with
            | Error ds ->
                render ~src ds;
                1
            | Ok (r, compile_warns) ->
                render ~src compile_warns;
                (* test-only: sabotage the schedule so the validator has
                   something to catch *)
                let r =
                  if not break_schedule then r
                  else
                    match
                      Verify.For_tests.reverse_first_loop r.Driver.transform
                    with
                    | None -> r
                    | Some broken ->
                        Driver.compile_with_transform ~options
                          r.Driver.program r.Driver.deps broken
                in
                let verify_failed = ref false in
                if verify then begin
                  let assoc =
                    List.map
                      (fun p ->
                        ( p,
                          match List.assoc_opt p bindings with
                          | Some v -> v
                          | None -> 6 ))
                      program.Ir.params
                  in
                  let params = Array.of_list (List.map snd assoc) in
                  let rep = Driver.verify ~params r in
                  Format.eprintf "translation validation (%s): %a@."
                    (String.concat ", "
                       (List.map
                          (fun (k, v) -> Printf.sprintf "%s=%d" k v)
                          assoc))
                    Verify.pp_report rep;
                  if not (Verify.ok rep) then verify_failed := true
                end;
                if show_deps then begin
                  Format.eprintf "/* %d dependences:@."
                    (List.length r.Driver.deps);
                  List.iter
                    (fun d -> Format.eprintf "   %a@." Deps.pp d)
                    r.Driver.deps;
                  Format.eprintf "*/@."
                end;
                if show_transform then
                  Format.eprintf "/* transformation:@.%a*/@."
                    Pluto.Auto.pp_transform r.Driver.transform;
                let emit fmt = Codegen.print_c fmt r.Driver.code in
                (match output with
                | None -> emit Format.std_formatter
                | Some path ->
                    let oc = open_out path in
                    Fun.protect
                      ~finally:(fun () -> close_out_noerr oc)
                      (fun () ->
                        let fmt = Format.formatter_of_out_channel oc in
                        emit fmt;
                        Format.pp_print_flush fmt ()));
                let check_failed = ref false in
                if check then begin
                  let assoc =
                    List.map
                      (fun p ->
                        ( p,
                          match List.assoc_opt p bindings with
                          | Some v -> v
                          | None -> 20 ))
                      program.Ir.params
                  in
                  let params = Array.of_list (List.map snd assoc) in
                  (* Marked-reduction programs are checked modulo FP
                     reassociation; everything else stays bit-exact. *)
                  let tolerance =
                    if
                      reductions
                      && List.exists
                           (fun d -> d.Deps.reduction)
                           r.Driver.deps
                    then Some Machine.reduction_tolerance
                    else None
                  in
                  let ok =
                    Machine.equivalent ?tolerance program r.Driver.code
                      ~params
                  in
                  Format.eprintf "equivalence check (%s): %s@."
                    (String.concat ", "
                       (List.map
                          (fun (k, v) -> Printf.sprintf "%s=%d" k v)
                          assoc))
                    (if ok then "PASS" else "FAIL");
                  if not ok then check_failed := true
                end;
                if native then begin
                  let assoc =
                    List.map
                      (fun p ->
                        ( p,
                          match List.assoc_opt p bindings with
                          | Some v -> v
                          | None ->
                              cli_error "--native-run needs --params %s=..." p
                        ))
                      program.Ir.params
                  in
                  match Runner.run r.Driver.code ~params:assoc with
                  | None -> Format.eprintf "native run: no C compiler found@."
                  | Some res ->
                      Format.eprintf "native run: %.6fs;%s@."
                        res.Runner.wall_seconds
                        (String.concat ""
                           (List.map
                              (fun (n, v) ->
                                Printf.sprintf " checksum(%s)=%s" n v)
                              res.Runner.checksums))
                end;
                if simulate then begin
                  let assoc =
                    List.map
                      (fun p ->
                        ( p,
                          match List.assoc_opt p bindings with
                          | Some v -> v
                          | None -> cli_error "--simulate needs --params %s=..." p
                        ))
                      program.Ir.params
                  in
                  let params = Array.of_list (List.map snd assoc) in
                  let mc =
                    { Machine.default_machine with Machine.ncores = cores }
                  in
                  let res = Machine.simulate mc r.Driver.code ~params in
                  Format.eprintf "simulation (%d cores): %a@." cores
                    Machine.pp_result res
                end;
                if !check_failed || !verify_failed then 1
                else if Driver.degraded compile_warns then 2
                else 0))))
  with
  | Cli_error d ->
      render [ d ];
      1
  | Sys_error msg ->
      render [ Diag.errorf ~code:"io" "%s" msg ];
      1
  | Failure msg ->
      render [ Diag.errorf ~code:"cli" "%s" msg ];
      1
  | (Out_of_memory | Sys.Break) as e -> raise e
    | e ->
        render
          [
            Diag.errorf ~code:"internal" "internal error: %s"
              (Printexc.to_string e);
          ];
        1
  in
  (* never exit while the store sits over its budget (idempotent; the batch
     path already ran it before assembling the manifest) *)
  Store.evict_to_budget ();
  if stats then prerr_endline (Stats.to_json ());
  (* machine-readable counterpart of --stats: one JSON file, nothing else
     mixed in — smoke scripts read counters from here instead of grepping
     stderr *)
  (match stats_json with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc (Stats.to_json ());
          output_char oc '\n'));
  code

let files_arg =
  Arg.(
    non_empty & pos_all file []
    & info [] ~docv:"FILE"
        ~doc:"Input C-subset file(s).  More than one requires $(b,--batch).")

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"OUT"
        ~doc:
          "Write generated C here (default: stdout).  With $(b,--batch) this \
           names a directory; each FILE becomes OUT/$(i,base).pluto.c.")

let show_deps_arg =
  Arg.(value & flag & info [ "show-deps" ] ~doc:"Print the dependence graph to stderr.")

let show_transform_arg =
  Arg.(
    value & flag
    & info [ "show-transform" ] ~doc:"Print the computed transformation to stderr.")

let no_tile_arg =
  Arg.(value & flag & info [ "no-tile" ] ~doc:"Disable tiling (Algorithm 1).")

let tile_size_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "tile-size" ] ~docv:"T" ~doc:"Uniform tile size (default: rough cache model).")

let no_parallel_arg =
  Arg.(value & flag & info [ "no-parallel" ] ~doc:"Do not mark loops for OpenMP.")

let wavefront_arg =
  Arg.(
    value & opt int 1
    & info [ "wavefront" ] ~docv:"M"
        ~doc:"Degrees of pipelined parallelism to extract (Algorithm 2).")

let no_intra_arg =
  Arg.(
    value & flag
    & info [ "no-intra-reorder" ]
        ~doc:"Disable the intra-tile reordering post-pass (section 5.4).")

let no_input_deps_arg =
  Arg.(
    value & flag
    & info [ "no-rar" ] ~doc:"Ignore read-after-read dependences in the cost function.")

let check_arg =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:"Verify semantic equivalence against the original order (small sizes).")

let params_arg =
  Arg.(
    value & opt string ""
    & info [ "params" ] ~docv:"P" ~doc:"Parameter bindings, e.g. N=8000,T=64.")

let simulate_arg =
  Arg.(
    value & flag
    & info [ "simulate" ]
        ~doc:"Run the multicore performance simulation (needs --params).")

let cores_arg =
  Arg.(value & opt int 4 & info [ "cores" ] ~docv:"K" ~doc:"Simulated core count.")

let native_arg =
  Arg.(
    value & flag
    & info [ "native-run" ]
        ~doc:"Compile the generated C with the host C compiler, run it and report wall time and checksums (needs --params).")

let strict_arg =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:
          "Disable the graceful-degradation ladder: fail (exit 1) as soon as \
           the Pluto transformation search fails instead of falling back to \
           the Feautrier baseline or the original program order.")

let verify_arg =
  Arg.(
    value & flag
    & info [ "verify" ]
        ~doc:
          "Run the independent translation validator on the result: re-prove \
           that the schedule respects every dependence (integer emptiness \
           over the dependence polyhedra) and that the generated loop nest \
           scans exactly the original iteration domain.  Parameter values \
           come from --params (default 6).  Exit 1 if validation fails.")

let unroll_jam_arg =
  Arg.(
    value & opt int 1
    & info [ "unroll-jam" ] ~docv:"F"
        ~doc:
          "Unroll-jam factor for the innermost parallel/vectorizable loop \
           (annotation priced by the simulator and emitted as a pragma; 1 = \
           off).")

let tune_arg =
  Arg.(
    value & flag
    & info [ "tune" ]
        ~doc:
          "Autotune tile sizes, fusion choice and unroll-jam empirically: \
           compile each candidate with full verification, cost it on the \
           simulated machine, and emit the best verified variant.  The \
           search order is pinned by PLUTO_FUZZ_SEED; evaluations are \
           memoized in PLUTO_TUNE_CACHE (default .pluto-tune-cache, empty \
           to disable).")

let tune_report_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tune-report" ] ~docv:"FILE"
        ~doc:"Write the full tuning report (every candidate's cost) as JSON.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Fan work out over N forked workers: tuning candidates with \
           $(b,--tune), input files with $(b,--batch).")

let batch_arg =
  Arg.(
    value & flag
    & info [ "batch" ]
        ~doc:
          "Compile every FILE (concurrently with $(b,--jobs)).  A file that \
           crashes its worker or exceeds $(b,--batch-timeout) is reported \
           and the rest of the batch is unaffected.  Exit status: 1 if any \
           file failed, else 2 if any file needed a fallback scheduling \
           rung, else 0.")

let batch_manifest_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "batch-manifest" ] ~docv:"FILE"
        ~doc:
          "With $(b,--batch): write a JSON manifest (per-file status, \
           scheduling rung, diagnostics and timings, plus aggregated \
           counters) here.")

let batch_timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "batch-timeout" ] ~docv:"S"
        ~doc:
          "With $(b,--batch): wall-clock budget per file, in seconds; a \
           file exceeding it fails with a pool-timeout diagnostic.")

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Persist solver results (ILP/LP answers, emptiness tests) in DIR \
           so they survive across processes and runs; entries are sharded \
           into 256 hash-prefix subdirectories, keyed by canonical \
           constraint-system digests, checksummed and versioned, so a stale \
           or corrupt entry is silently recomputed.  Orphaned temp files \
           from crashed runs are garbage-collected at startup.")

let cache_size_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-size" ] ~docv:"BYTES"
        ~doc:
          "Byte budget for $(b,--cache-dir) (suffixes K/M/G accepted, e.g. \
           64M).  When the store grows past the budget, least-recently-used \
           entries are evicted; recency is tracked across processes, so any \
           number of concurrent runs can share one budgeted cache.")

let tune_budget_arg =
  Arg.(
    value & opt int 24
    & info [ "tune-budget" ] ~docv:"K"
        ~doc:
          "Evaluate at most K candidates (the default and T=64 baselines are \
           always among them).")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print internal counters and pass timings (ILP solves, \
           Fourier-Motzkin eliminations, cache-model events, ...) as JSON on \
           stderr.")

let stats_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats-json" ] ~docv:"FILE"
        ~doc:
          "Write the same counters/timers JSON as $(b,--stats) to FILE — \
           machine-readable, never interleaved with diagnostics.")

let connect_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "connect" ] ~docv:"SOCK"
        ~doc:
          "Compile through a running plutod daemon on this Unix socket \
           (works for single-file and $(b,--batch) mode; responses reuse \
           the daemon's hot caches).  When no daemon is listening, fall \
           back to normal local compilation with a note.  Flags that need \
           in-process artifacts ($(b,--tune), $(b,--check), \
           $(b,--simulate), $(b,--native-run), dump flags) always compile \
           locally.")

(* Deliberately undocumented: sabotage hook for exercising --verify's
   rejection path from the test suite. *)
let break_schedule_arg =
  Arg.(
    value & flag
    & info [ "break-schedule" ] ~doc:"" ~docs:Cmdliner.Manpage.s_none)

(* Deliberately undocumented: disable solver warm starts and emptiness
   caching, the reference configuration for A/B-ing the incremental solver
   (CI's solver-smoke job and the bench solver section use it). *)
let cold_solver_arg =
  Arg.(
    value & flag & info [ "cold-solver" ] ~doc:"" ~docs:Cmdliner.Manpage.s_none)

let fast_schedule_arg =
  Arg.(
    value
    & vflag true
        [
          ( true,
            info [ "fast-schedule" ]
              ~doc:
                "Try the fast fusion/dimension-matching scheduler before the \
                 exact per-hyperplane ILP (the default).  Accepted schedules \
                 are translation-validated first; anything else falls back \
                 to the ILP with a fastpath-rejected warning (still exit \
                 0)." );
          ( false,
            info [ "no-fast-schedule" ]
              ~doc:
                "Always use the exact per-hyperplane ILP search (skip the \
                 fast scheduling path)." );
        ])

(* Deliberately undocumented: sabotage hook for exercising the fast path's
   rejection machinery — corrupts any accepted fast schedule before
   validation, so the validator must catch it and the ILP must take over. *)
let break_fastpath_arg =
  Arg.(
    value & flag
    & info [ "break-fastpath" ] ~doc:"" ~docs:Cmdliner.Manpage.s_none)

let reductions_arg =
  Arg.(
    value & flag
    & info [ "reductions" ]
        ~doc:
          "Reduction-aware compilation: detect associative/commutative \
           self-updates (sums, products, histograms), relax their \
           self-dependences during scheduling so the surrounding loops can \
           be parallelized, and emit OpenMP reduction(op:array) clauses on \
           parallel loops that carry them.  Execution then matches the \
           original order up to floating-point reassociation rather than \
           bit-exactly ($(b,--check) compares with a small relative \
           tolerance for such programs).  Off by default; without this flag \
           output is bit-identical to previous releases.")

let cmd =
  let doc = "automatic polyhedral parallelizer and locality optimizer" in
  let info = Cmd.info "plutocc" ~version:"1.0" ~doc in
  Cmd.v info
    Term.(
      const run $ files_arg $ output_arg $ show_deps_arg $ show_transform_arg
      $ no_tile_arg $ tile_size_arg $ no_parallel_arg $ wavefront_arg
      $ no_intra_arg $ no_input_deps_arg $ unroll_jam_arg $ check_arg
      $ params_arg $ simulate_arg $ cores_arg $ native_arg $ strict_arg
      $ verify_arg $ break_schedule_arg $ tune_arg $ tune_report_arg
      $ jobs_arg $ tune_budget_arg $ stats_arg $ stats_json_arg
      $ cold_solver_arg $ batch_arg $ batch_manifest_arg $ batch_timeout_arg
      $ cache_dir_arg $ cache_size_arg $ fast_schedule_arg
      $ break_fastpath_arg $ reductions_arg $ connect_arg)

let () = exit (Cmd.eval' cmd)
