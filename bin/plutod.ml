(** plutod — the compilation-as-a-service daemon (see {!Server}).

    Serves newline-delimited JSON compile requests over a Unix-domain
    socket (and optionally TCP on localhost), keeping the in-memory solver
    caches hot across requests and backing finished results with the
    persistent store.  [plutocc --connect SOCK] is the matching client.

    The admin one-shots ([--ping], [--query-stats], [--request-shutdown])
    connect to an already-running daemon instead of starting one, so shell
    scripts need no extra tooling. *)

open Cmdliner

(* "64M", "512k", "2G" or plain bytes — same syntax as plutocc. *)
let parse_size spec =
  let s = String.trim spec in
  let n = String.length s in
  let mult, digits =
    if n = 0 then (1, s)
    else
      match s.[n - 1] with
      | 'k' | 'K' -> (1024, String.sub s 0 (n - 1))
      | 'm' | 'M' -> (1024 * 1024, String.sub s 0 (n - 1))
      | 'g' | 'G' -> (1024 * 1024 * 1024, String.sub s 0 (n - 1))
      | _ -> (1, s)
  in
  match int_of_string_opt (String.trim digits) with
  | Some v when v > 0 -> Some (v * mult)
  | _ -> None

let default_socket = Filename.concat (Filename.get_temp_dir_name ()) "plutod.sock"

let run socket tcp_port jobs cache_dir cache_size deadline result_cache stats
    ping query_stats request_shutdown =
  if ping then
    if Client.ping ~socket then begin
      print_endline "pong";
      0
    end
    else begin
      prerr_endline ("plutod: no daemon listening on " ^ socket);
      1
    end
  else if query_stats then begin
    match Client.stats ~socket with
    | Ok line ->
        print_endline line;
        0
    | Error msg ->
        prerr_endline ("plutod: " ^ msg);
        1
  end
  else if request_shutdown then
    if Client.shutdown ~socket then 0
    else begin
      prerr_endline ("plutod: no daemon listening on " ^ socket);
      1
    end
  else begin
    Store.set_dir cache_dir;
    (match cache_size with
    | None -> ()
    | Some spec -> (
        match parse_size spec with
        | Some bytes -> Store.set_budget (Some bytes)
        | None ->
            prerr_endline
              ("plutod: --cache-size: " ^ spec
             ^ " is not a positive size (try 64M, 512K, 2G)");
            exit 1));
    let cfg =
      {
        (Server.default_config ~socket_path:socket) with
        Server.tcp_port;
        jobs = max 1 jobs;
        default_deadline_s = deadline;
        result_cache_entries = max 1 result_cache;
      }
    in
    match Server.run cfg with
    | () ->
        if stats then prerr_endline (Stats.to_json ());
        0
    | exception Failure msg ->
        prerr_endline msg;
        1
  end

let socket_arg =
  Arg.(
    value & opt string default_socket
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Unix-domain socket to listen on (a stale socket file left by a \
           dead daemon is replaced; a live daemon on the same path refuses \
           startup).")

let tcp_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "tcp" ] ~docv:"PORT" ~doc:"Also listen on 127.0.0.1:PORT.")

let jobs_arg =
  Arg.(
    value & opt int 2
    & info [ "jobs" ] ~docv:"N"
        ~doc:"Compile at most N requests concurrently (forked workers).")

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Back the daemon's caches with the persistent solver/result store \
           in DIR (same store plutocc --cache-dir uses): a restarted daemon \
           serves previously compiled requests warm from disk.")

let cache_size_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-size" ] ~docv:"BYTES"
        ~doc:"Byte budget for --cache-dir (K/M/G suffixes accepted).")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"S"
        ~doc:
          "Default per-request wall-clock budget in seconds (a request's \
           own deadline_s field overrides it); an expired request's worker \
           is killed and the client gets a structured pool-timeout \
           diagnostic.")

let result_cache_arg =
  Arg.(
    value & opt int 256
    & info [ "result-cache" ] ~docv:"N"
        ~doc:"Keep up to N finished compile results in the in-memory LRU.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"After a graceful drain, print aggregate counters as JSON on stderr.")

let ping_arg =
  Arg.(
    value & flag
    & info [ "ping" ] ~doc:"Probe a running daemon and exit (0 iff it answered).")

let query_stats_arg =
  Arg.(
    value & flag
    & info [ "query-stats" ]
        ~doc:
          "Print a running daemon's aggregate stats response (one JSON \
           line) on stdout and exit.")

let request_shutdown_arg =
  Arg.(
    value & flag
    & info [ "request-shutdown" ]
        ~doc:"Ask a running daemon to drain gracefully and exit.")

let cmd =
  let doc = "polyhedral compilation daemon (plutocc as a service)" in
  let info = Cmd.info "plutod" ~version:"1.0" ~doc in
  Cmd.v info
    Term.(
      const run $ socket_arg $ tcp_arg $ jobs_arg $ cache_dir_arg
      $ cache_size_arg $ deadline_arg $ result_cache_arg $ stats_arg
      $ ping_arg $ query_stats_arg $ request_shutdown_arg)

let () = exit (Cmd.eval' cmd)
