(** plutod — the compilation-as-a-service daemon (see {!Server}).

    Serves newline-delimited JSON compile requests over a Unix-domain
    socket (and optionally TCP on localhost), keeping the in-memory solver
    caches hot across requests and backing finished results with the
    persistent store.  [plutocc --connect SOCK] is the matching client.

    The admin one-shots ([--ping], [--query-stats], [--request-shutdown])
    connect to an already-running daemon instead of starting one, so shell
    scripts need no extra tooling. *)

open Cmdliner

(* "64M", "512k", "2G" or plain bytes — same syntax as plutocc. *)
let parse_size spec =
  let s = String.trim spec in
  let n = String.length s in
  let mult, digits =
    if n = 0 then (1, s)
    else
      match s.[n - 1] with
      | 'k' | 'K' -> (1024, String.sub s 0 (n - 1))
      | 'm' | 'M' -> (1024 * 1024, String.sub s 0 (n - 1))
      | 'g' | 'G' -> (1024 * 1024 * 1024, String.sub s 0 (n - 1))
      | _ -> (1, s)
  in
  match int_of_string_opt (String.trim digits) with
  | Some v when v > 0 -> Some (v * mult)
  | _ -> None

let default_socket = Filename.concat (Filename.get_temp_dir_name ()) "plutod.sock"

let run socket tcp_port jobs cache_dir cache_size deadline result_cache
    max_connections max_pipeline max_queue max_request_bytes max_output_bytes
    solver_cache_entries stats ping query_stats request_shutdown =
  if ping then
    if Client.ping ~socket then begin
      print_endline "pong";
      0
    end
    else begin
      prerr_endline ("plutod: no daemon listening on " ^ socket);
      1
    end
  else if query_stats then begin
    match Client.stats ~socket with
    | Ok line ->
        print_endline line;
        0
    | Error msg ->
        prerr_endline ("plutod: " ^ msg);
        1
  end
  else if request_shutdown then
    if Client.shutdown ~socket then 0
    else begin
      prerr_endline ("plutod: no daemon listening on " ^ socket);
      1
    end
  else begin
    Store.set_dir cache_dir;
    (match cache_size with
    | None -> ()
    | Some spec -> (
        match parse_size spec with
        | Some bytes -> Store.set_budget (Some bytes)
        | None ->
            prerr_endline
              ("plutod: --cache-size: " ^ spec
             ^ " is not a positive size (try 64M, 512K, 2G)");
            exit 1));
    let size_flag flag spec =
      match parse_size spec with
      | Some bytes -> bytes
      | None ->
          prerr_endline
            (Printf.sprintf
               "plutod: %s: %s is not a positive size (try 64K, 8M)" flag
               spec);
          exit 1
    in
    let d = Server.default_config ~socket_path:socket in
    let cfg =
      {
        d with
        Server.tcp_port;
        jobs = max 1 jobs;
        default_deadline_s = deadline;
        result_cache_entries = max 1 result_cache;
        max_connections = max 1 max_connections;
        max_pipeline = max 1 max_pipeline;
        max_queue = max 1 max_queue;
        max_request_bytes =
          (match max_request_bytes with
          | None -> d.Server.max_request_bytes
          | Some spec -> size_flag "--max-request-bytes" spec);
        max_output_bytes =
          (match max_output_bytes with
          | None -> d.Server.max_output_bytes
          | Some spec -> size_flag "--max-output-bytes" spec);
        solver_cache_entries;
      }
    in
    match Server.run cfg with
    | () ->
        if stats then prerr_endline (Stats.to_json ());
        0
    | exception Failure msg ->
        prerr_endline msg;
        1
  end

let socket_arg =
  Arg.(
    value & opt string default_socket
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Unix-domain socket to listen on (a stale socket file left by a \
           dead daemon is replaced; a live daemon on the same path refuses \
           startup).")

let tcp_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "tcp" ] ~docv:"PORT" ~doc:"Also listen on 127.0.0.1:PORT.")

let jobs_arg =
  Arg.(
    value & opt int 2
    & info [ "jobs" ] ~docv:"N"
        ~doc:"Compile at most N requests concurrently (forked workers).")

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Back the daemon's caches with the persistent solver/result store \
           in DIR (same store plutocc --cache-dir uses): a restarted daemon \
           serves previously compiled requests warm from disk.")

let cache_size_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-size" ] ~docv:"BYTES"
        ~doc:"Byte budget for --cache-dir (K/M/G suffixes accepted).")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"S"
        ~doc:
          "Default per-request wall-clock budget in seconds (a request's \
           own deadline_s field overrides it); an expired request's worker \
           is killed and the client gets a structured pool-timeout \
           diagnostic.")

let result_cache_arg =
  Arg.(
    value & opt int 256
    & info [ "result-cache" ] ~docv:"N"
        ~doc:"Keep up to N finished compile results in the in-memory LRU.")

let max_connections_arg =
  Arg.(
    value & opt int 768
    & info [ "max-connections" ] ~docv:"N"
        ~doc:
          "Serve at most N concurrent client connections (default 768 — \
           select() tops out at 1024 descriptors).  A connection over the \
           cap is answered with one structured server-busy line and \
           closed; clients fall back to local compilation.")

let max_pipeline_arg =
  Arg.(
    value & opt int 32
    & info [ "max-pipeline" ] ~docv:"N"
        ~doc:
          "Allow at most N outstanding (unanswered) requests per \
           connection; further pipelined requests get a structured \
           server-busy response until responses drain.")

let max_queue_arg =
  Arg.(
    value & opt int 256
    & info [ "max-queue" ] ~docv:"N"
        ~doc:
          "Queue at most N compile jobs waiting for a worker, globally; a \
           request that would queue a new job beyond that gets server-busy \
           (cache hits and requests joining an in-flight compile are \
           always admitted).")

let max_request_bytes_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "max-request-bytes" ] ~docv:"BYTES"
        ~doc:
          "Reject request lines longer than this (default 8M; K/M/G \
           suffixes accepted) with a structured bad-request response and \
           close the connection — bounds the per-connection input buffer.")

let max_output_bytes_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "max-output-bytes" ] ~docv:"BYTES"
        ~doc:
          "Stop reading from a connection whose unread responses exceed \
           this (default 4M; K/M/G suffixes accepted) until the client \
           drains them — backpressure that bounds the per-connection \
           output buffer against slow readers.")

let solver_cache_entries_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "solver-cache-entries" ] ~docv:"N"
        ~doc:
          "Cap each in-memory solver cache (LP, integer feasibility, \
           emptiness — the tables kept hot across forked workers) at N \
           entries, evicting least-recently-used entries past the cap \
           (counter server.cache_evicted).  Default: 100000 per table.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"After a graceful drain, print aggregate counters as JSON on stderr.")

let ping_arg =
  Arg.(
    value & flag
    & info [ "ping" ] ~doc:"Probe a running daemon and exit (0 iff it answered).")

let query_stats_arg =
  Arg.(
    value & flag
    & info [ "query-stats" ]
        ~doc:
          "Print a running daemon's aggregate stats response (one JSON \
           line) on stdout and exit.")

let request_shutdown_arg =
  Arg.(
    value & flag
    & info [ "request-shutdown" ]
        ~doc:"Ask a running daemon to drain gracefully and exit.")

let cmd =
  let doc = "polyhedral compilation daemon (plutocc as a service)" in
  let info = Cmd.info "plutod" ~version:"1.0" ~doc in
  Cmd.v info
    Term.(
      const run $ socket_arg $ tcp_arg $ jobs_arg $ cache_dir_arg
      $ cache_size_arg $ deadline_arg $ result_cache_arg
      $ max_connections_arg $ max_pipeline_arg $ max_queue_arg
      $ max_request_bytes_arg $ max_output_bytes_arg
      $ solver_cache_entries_arg $ stats_arg $ ping_arg $ query_stats_arg
      $ request_shutdown_arg)

let () = exit (Cmd.eval' cmd)
